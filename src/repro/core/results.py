"""Campaign results.

A B3 campaign tests many workloads on one file system; this module aggregates
the per-workload :class:`CrashTestResult` objects into the quantities the
paper reports: how many workloads were tested, how long testing took, how
many bug reports were produced, and (after Figure-5 post-processing) how many
distinct bugs remain.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..crashmonkey.report import BugReport, CrashTestResult
from .dedup import KnownBugDatabase, ReportGroup, deduplicate, group_reports


@dataclass
class CampaignResult:
    """Aggregated outcome of one testing campaign."""

    fs_name: str
    fs_model: str
    label: str = ""
    results: List[CrashTestResult] = field(default_factory=list)
    generation_seconds: float = 0.0
    testing_seconds: float = 0.0
    #: generated workloads dropped by the adapter because validation failed
    #: (surfaced, never silently swallowed: tested + invalid = generated)
    invalid_workloads: int = 0

    # -- incremental aggregation -------------------------------------------------

    def ingest_many(self, results: List[CrashTestResult]) -> None:
        """Aggregate a completed chunk's outcomes (streamed in as testing runs).

        The execution engine calls this per completed chunk, so every derived
        quantity below is available mid-campaign for progress reporting.
        """
        self.results.extend(results)

    # -- serialization (campaign state store / --json-out) -----------------------

    def to_dict(self) -> dict:
        """JSON-ready view of the full campaign outcome.

        ``results`` round-trips byte-for-byte via
        :meth:`CrashTestResult.to_dict`; the ``derived`` block repeats the
        headline aggregates for consumers that only read the summary (it is
        ignored by :meth:`from_dict`, which recomputes everything from the
        raw results).
        """
        return {
            "fs_name": self.fs_name,
            "fs_model": self.fs_model,
            "label": self.label,
            "generation_seconds": self.generation_seconds,
            "testing_seconds": self.testing_seconds,
            "invalid_workloads": self.invalid_workloads,
            "results": [result.to_dict() for result in self.results],
            "derived": {
                "workloads_tested": self.workloads_tested,
                "crash_points_tested": self.crash_points_tested,
                "failing_workloads": self.failing_workloads,
                "raw_reports": len(self.all_reports()),
                "report_groups": len(self.grouped_reports()),
                "deduped_scenarios": self.deduped_scenarios,
                "cross_deduped_scenarios": self.cross_deduped_scenarios,
                "prefix_hits": self.prefix_hits,
                "replay_hits": self.replay_hits,
            },
        }

    def canonical_dict(self) -> dict:
        """Schedule-invariant view: what was tested, not how the run went.

        Drops wall-clock timings and the sharing telemetry (see
        :attr:`CrashTestResult.SESSION_FIELDS`) — those depend on harness
        lifetimes, so an interrupted-and-resumed campaign or a different
        chunk->worker assignment legitimately reports different values.
        Everything that remains is identical across schedules; the
        crash-resume tests and the CI smoke compare exactly this payload.
        """
        return {
            "fs_name": self.fs_name,
            "fs_model": self.fs_model,
            "label": self.label,
            "invalid_workloads": self.invalid_workloads,
            "results": [result.canonical_dict() for result in self.results],
            "derived": {
                "workloads_tested": self.workloads_tested,
                "crash_points_tested": self.crash_points_tested,
                "failing_workloads": self.failing_workloads,
                "raw_reports": len(self.all_reports()),
                "report_groups": len(self.grouped_reports()),
                "deduped_scenarios": self.deduped_scenarios,
                "cross_deduped_scenarios": self.cross_deduped_scenarios,
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignResult":
        return cls(
            fs_name=payload["fs_name"],
            fs_model=payload["fs_model"],
            label=payload.get("label", ""),
            results=[CrashTestResult.from_dict(r) for r in payload.get("results", [])],
            generation_seconds=payload.get("generation_seconds", 0.0),
            testing_seconds=payload.get("testing_seconds", 0.0),
            invalid_workloads=payload.get("invalid_workloads", 0),
        )

    # -- aggregation ------------------------------------------------------------

    @property
    def workloads_tested(self) -> int:
        return len(self.results)

    @property
    def crash_points_tested(self) -> int:
        return sum(result.checkpoints_tested for result in self.results)

    @property
    def failing_workloads(self) -> int:
        return sum(1 for result in self.results if not result.passed)

    # -- prefix-shared recording / dedup accounting -------------------------------

    @property
    def prefix_hits(self) -> int:
        """Workloads whose profile resumed from a worker's prefix cache."""
        return sum(1 for result in self.results if result.prefix_shared)

    @property
    def prefix_ops_reused(self) -> int:
        """Operations inherited from shared prefixes instead of re-executed."""
        return sum(result.prefix_ops_reused for result in self.results)

    @property
    def prefix_writes_reused(self) -> int:
        """Write requests inherited from shared prefixes across the campaign."""
        return sum(result.prefix_writes_reused for result in self.results)

    @property
    def replay_hits(self) -> int:
        """Workloads whose crash-state build resumed from a replay trail."""
        return sum(1 for result in self.results if result.replay_shared)

    @property
    def replayed_write_requests(self) -> int:
        """Write requests actually applied while constructing crash states."""
        return sum(result.replayed_write_requests for result in self.results)

    @property
    def replay_writes_reused(self) -> int:
        """Write requests inherited from shared replay trails campaign-wide."""
        return sum(result.replay_writes_reused for result in self.results)

    @property
    def spine_spills(self) -> int:
        """Spine nodes spilled to disk across every worker harness."""
        return sum(result.spine_spills for result in self.results)

    @property
    def spine_spilled_bytes(self) -> int:
        """Bytes of spine nodes written to spill directories campaign-wide."""
        return sum(result.spine_spilled_bytes for result in self.results)

    @property
    def spine_rehydrations(self) -> int:
        """Spilled spine nodes read back from disk campaign-wide."""
        return sum(result.spine_rehydrations for result in self.results)

    @property
    def spine_peak_resident_bytes(self) -> int:
        """Highest resident spine byte count any worker harness reached.

        Bounded by the configured ``spine_memory_budget`` (per harness, so
        per worker under a pool backend).
        """
        return max(
            (result.spine_peak_resident_bytes for result in self.results),
            default=0,
        )

    @property
    def deduped_scenarios(self) -> int:
        """Scenarios skipped by within-workload cross-checkpoint dedup."""
        return sum(result.deduped_scenarios for result in self.results)

    @property
    def cross_deduped_scenarios(self) -> int:
        """Scenarios skipped because an earlier workload already tested them."""
        return sum(result.cross_deduped_scenarios for result in self.results)

    def recording_seconds_saved(self) -> float:
        """Recording-phase seconds prefix sharing avoided (summed over workers).

        Like :meth:`phase_seconds` this is CPU time summed across workers,
        not wall clock.
        """
        return sum(result.prefix_seconds_saved for result in self.results)

    def replay_seconds_saved(self) -> float:
        """Construction-phase seconds shared replay avoided (summed over workers).

        The trie-hit component of the replay phase; ``phase_seconds()``'s
        replay component is the fresh-build part actually paid.
        """
        return sum(result.replay_seconds_saved for result in self.results)

    def all_reports(self) -> List[BugReport]:
        reports: List[BugReport] = []
        for result in self.results:
            reports.extend(result.bug_reports)
        return reports

    def grouped_reports(self) -> List[ReportGroup]:
        """Figure-5 grouping of every raw report."""
        return group_reports(self.all_reports())

    def unique_reports(self, database: Optional[KnownBugDatabase] = None) -> List[ReportGroup]:
        """Figure-5 grouping after filtering against a known-bug database."""
        return deduplicate(self.all_reports(), database)

    def consequences(self) -> Dict[str, int]:
        counts: Counter = Counter()
        for report in self.all_reports():
            counts[report.consequence] += 1
        return dict(counts)

    def mean_test_seconds(self) -> float:
        if not self.results:
            return 0.0
        return sum(result.total_seconds for result in self.results) / len(self.results)

    def phase_seconds(self) -> Tuple[float, float, float, float, float]:
        """Total (profile, replay, mount, fsck, check) seconds across all
        workloads — the §6.3 phases, with crash-state construction (replay),
        mounting/recovery, and fsck attributed separately.  The five components
        sum to the CPU time spent testing, summed over workers; under a
        parallel backend that exceeds ``testing_seconds``, which is wall
        clock."""
        profile = sum(result.profile_seconds for result in self.results)
        replay = sum(result.replay_seconds for result in self.results)
        mount = sum(result.mount_seconds for result in self.results)
        fsck = sum(result.fsck_seconds for result in self.results)
        check = sum(result.check_seconds for result in self.results)
        return profile, replay, mount, fsck, check

    def check_timings(self) -> Dict[str, float]:
        """Per-check wall-clock attribution summed across every workload.

        The per-component breakdown of the checking phase: check name ->
        total seconds spent in that check over the whole campaign.
        """
        totals: Dict[str, float] = {}
        for result in self.results:
            for name, seconds in result.check_timings.items():
                totals[name] = totals.get(name, 0.0) + seconds
        return totals

    def summary(self) -> str:
        groups = self.grouped_reports()
        invalid = (f" (+{self.invalid_workloads} invalid dropped)"
                   if self.invalid_workloads else "")
        return (
            f"campaign {self.label or '-'} on {self.fs_model}: "
            f"{self.workloads_tested} workloads{invalid}, "
            f"{self.crash_points_tested} crash points, "
            f"{self.failing_workloads} failing workloads, {len(self.all_reports())} raw reports, "
            f"{len(groups)} report groups, "
            f"{self.generation_seconds:.2f}s generation + {self.testing_seconds:.2f}s testing"
        )

    def recording_summary(self) -> str:
        """One line of prefix-sharing / dedup accounting for this campaign."""
        return (
            f"recording: {self.prefix_hits}/{self.workloads_tested} prefix hits, "
            f"{self.prefix_ops_reused} ops and {self.prefix_writes_reused} writes reused, "
            f"{self.recording_seconds_saved():.2f}s saved; "
            f"dedup: {self.deduped_scenarios} within-workload + "
            f"{self.cross_deduped_scenarios} cross-workload scenarios skipped"
        )

    def replay_summary(self) -> str:
        """One line of shared-replay accounting for this campaign."""
        return (
            f"replay: {self.replay_hits}/{self.workloads_tested} trail hits, "
            f"{self.replay_writes_reused} writes reused "
            f"({self.replayed_write_requests} replayed fresh), "
            f"{self.replay_seconds_saved():.2f}s saved"
        )

    def spine_summary(self) -> str:
        """One line of spine-spill accounting for this campaign."""
        return (
            f"spine spill: {self.spine_spills} nodes "
            f"({self.spine_spilled_bytes} bytes) spilled, "
            f"{self.spine_rehydrations} rehydrated, "
            f"peak resident {self.spine_peak_resident_bytes} bytes per worker"
        )

    def describe(self) -> str:
        lines = [self.summary()]
        if self.prefix_hits or self.cross_deduped_scenarios:
            lines.append(self.recording_summary())
        if self.replay_hits:
            lines.append(self.replay_summary())
        if self.spine_spills or self.spine_rehydrations:
            lines.append(self.spine_summary())
        lines.append("report groups:")
        for group in self.grouped_reports():
            lines.append("  " + group.describe())
        return "\n".join(lines)
