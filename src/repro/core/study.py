"""Crash-consistency bug study (paper §3, Table 1).

Analytics over the known-bug corpus: breakdowns by consequence, kernel
version, file system, and number of core operations, plus the observations
the paper draws from them (small workloads suffice, every bug follows a
persistence point, file-name reuse and overlapping writes dominate).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .known_bugs import KnownBug, known_bugs


@dataclass
class StudyReport:
    """The Table-1 style breakdown of the studied bugs."""

    by_consequence: Dict[str, int] = field(default_factory=dict)
    by_kernel: Dict[str, int] = field(default_factory=dict)
    by_filesystem: Dict[str, int] = field(default_factory=dict)
    by_num_ops: Dict[int, int] = field(default_factory=dict)
    unique_bugs: int = 0
    total_bug_instances: int = 0

    def describe(self) -> str:
        lines = [
            f"Studied {self.unique_bugs} unique crash-consistency bugs "
            f"({self.total_bug_instances} bug/file-system instances)",
            "by consequence:",
        ]
        lines.extend(f"  {name:<28} {count}" for name, count in sorted(self.by_consequence.items()))
        lines.append("by kernel version:")
        lines.extend(f"  {name:<28} {count}" for name, count in sorted(self.by_kernel.items()))
        lines.append("by file system:")
        lines.extend(f"  {name:<28} {count}" for name, count in sorted(self.by_filesystem.items()))
        lines.append("by number of core operations:")
        lines.extend(f"  {count_ops} op(s): {count}" for count_ops, count in sorted(self.by_num_ops.items()))
        return "\n".join(lines)


def analyze(bugs: List[KnownBug] = None) -> StudyReport:
    """Compute the Table-1 breakdown.

    Consequence, kernel and file-system counts are per bug/file-system
    instance (a bug reported on two file systems counts twice, as in the
    paper's 26-unique / 28-total accounting); the operation-count breakdown is
    per unique bug.
    """
    bugs = known_bugs() if bugs is None else bugs
    report = StudyReport()
    report.unique_bugs = len(bugs)

    consequence: Counter = Counter()
    kernel: Counter = Counter()
    filesystem: Counter = Counter()
    num_ops: Counter = Counter()
    instances = 0
    for bug in bugs:
        for fs_name in bug.filesystems:
            instances += 1
            consequence[bug.table1_consequence] += 1
            kernel[bug.kernel_version] += 1
            filesystem[fs_name] += 1
        num_ops[bug.num_core_ops] += 1

    report.total_bug_instances = instances
    report.by_consequence = dict(consequence)
    report.by_kernel = dict(kernel)
    report.by_filesystem = dict(filesystem)
    report.by_num_ops = dict(num_ops)
    return report


def operations_involved(bugs: List[KnownBug] = None) -> Dict[str, int]:
    """Frequency of core operations across the studied bugs' workloads.

    The paper observes that write, link, unlink and rename are the four most
    common operations in reported bugs.
    """
    bugs = known_bugs() if bugs is None else bugs
    counts: Counter = Counter()
    for bug in bugs:
        if not bug.workload_text:
            continue
        workload = bug.workload()
        for op in workload.core_ops():
            counts[op.op] += 1
    return dict(counts)


def persistence_point_observation(bugs: List[KnownBug] = None) -> Tuple[int, int]:
    """(bugs whose workload ends at a persistence point, bugs with a workload).

    Every reported bug involves a crash right after a persistence point —
    this is the observation that makes B3's crash-point choice viable.
    """
    bugs = known_bugs() if bugs is None else bugs
    with_workload = [bug for bug in bugs if bug.workload_text]
    ending_with_persistence = sum(
        1 for bug in with_workload if bug.workload().ends_with_persistence()
    )
    return ending_with_persistence, len(with_workload)


def small_workload_observation(bugs: List[KnownBug] = None, max_ops: int = 3) -> Tuple[int, int]:
    """(bugs reproducible with at most ``max_ops`` core ops, unique bugs)."""
    bugs = known_bugs() if bugs is None else bugs
    small = sum(1 for bug in bugs if bug.num_core_ops <= max_ops and bug.reproducible_by_b3)
    return small, len(bugs)
