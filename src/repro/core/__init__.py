"""The B3 layer: bug study, known-bug corpus, campaigns, and post-processing."""

from .campaign import B3Campaign, CampaignConfig, quick_campaign
from .dedup import KnownBugDatabase, ReportGroup, deduplicate, filter_new_reports, group_reports
from .known_bugs import (
    BUGS,
    KnownBug,
    all_bugs,
    bugs_for_filesystem,
    get_bug,
    known_bugs,
    new_bugs,
    table2_bugs,
)
from .results import CampaignResult
from .study import (
    StudyReport,
    analyze,
    operations_involved,
    persistence_point_observation,
    small_workload_observation,
)

__all__ = [
    "B3Campaign",
    "CampaignConfig",
    "quick_campaign",
    "CampaignResult",
    "KnownBug",
    "BUGS",
    "known_bugs",
    "new_bugs",
    "all_bugs",
    "get_bug",
    "bugs_for_filesystem",
    "table2_bugs",
    "KnownBugDatabase",
    "ReportGroup",
    "group_reports",
    "filter_new_reports",
    "deduplicate",
    "StudyReport",
    "analyze",
    "operations_involved",
    "persistence_point_observation",
    "small_workload_observation",
]
