"""Database of the paper's crash-consistency bugs.

Two corpora are encoded here:

* the **26 known bugs** reported against Linux file systems in the five years
  before the paper (studied in §3, reproduced in §6.2, workloads in Appendix
  9.1).  Two of them cannot be reproduced by B3 (one needs ``dropcaches``
  during the workload, the other needs ~3000 pre-existing hard links); they
  are included with ``reproducible_by_b3=False``.
* the **11 new bugs** CrashMonkey and ACE found (Table 5, Appendix 9.2) —
  ten in btrfs/F2FS plus the FSCQ data-loss bug.

Each record carries the triggering workload (in the workload language), the
simulated file systems it applies to, the consequence, and the bug *mechanism*
ids (:mod:`repro.fs.bugs`) that model it in the simulator.

Workloads are transcribed from the appendix listings (which are printed
crash-first, i.e. in reverse execution order).  A few need small adaptations
for the simulator; each such deviation is recorded in the ``notes`` field and
summarized in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..fs.bugs import Consequence
from ..workload.language import parse_workload
from ..workload.workload import Workload


@dataclass(frozen=True)
class KnownBug:
    """One bug from the paper's corpora."""

    bug_id: str                      #: "known-N" (Appendix 9.1) or "new-N" (Appendix 9.2)
    title: str
    filesystems: Tuple[str, ...]     #: real file-system names ("btrfs", "ext4", "F2FS", "FSCQ")
    consequence: str                 #: fine-grained consequence (Consequence constants)
    table1_consequence: str          #: coarse Table-1 bucket (corruption / data inconsistency / unmountable)
    num_core_ops: int                #: number of core ops (Table 1 / Table 5 column)
    kernel_version: str              #: kernel the bug was reported on (Table 1 distribution)
    introduced: str = ""             #: year the bug entered the kernel (Table 5 column)
    workload_text: str = ""          #: workload-language text; empty when not reproducible by B3
    mechanisms: Tuple[str, ...] = ()
    reproducible_by_b3: bool = True
    table2_row: Optional[int] = None  #: row number if the bug appears in Table 2
    notes: str = ""

    @property
    def is_new(self) -> bool:
        return self.bug_id.startswith("new-")

    def workload(self) -> Workload:
        if not self.workload_text:
            raise ValueError(f"{self.bug_id} has no B3 workload (not reproducible within bounds)")
        workload = parse_workload(self.workload_text, name=self.bug_id, source=f"known-bug:{self.bug_id}")
        workload.seq_length = self.num_core_ops
        return workload

    def simulator_filesystems(self) -> Tuple[str, ...]:
        from ..fs.registry import ALIASES

        return tuple(ALIASES[name.lower()] for name in self.filesystems)


# --------------------------------------------------------------------------------------
# Appendix 9.1 — the 26 previously reported bugs (24 with B3 workloads).
# --------------------------------------------------------------------------------------

_KNOWN: List[KnownBug] = [
    KnownBug(
        "known-1", "Renamed and re-created file loses the persisted original",
        ("btrfs", "F2FS"), Consequence.FILE_MISSING, "corruption", 3, "4.4",
        workload_text="""
            mkdir A
            write A/foo 0 16384
            sync
            rename A/foo A/bar
            write A/foo 0 4096
            fsync A/foo
        """,
        mechanisms=("rename_dest_not_logged",),
        notes="Appendix workload 1; also Table 2 row 4 (F2FS variant).",
        table2_row=4,
    ),
    KnownBug(
        "known-2", "Blocks allocated beyond EOF lost after fdatasync",
        ("ext4", "F2FS"), Consequence.DATA_LOSS, "data inconsistency", 2, "4.15",
        workload_text="""
            creat foo
            write foo 0 8192
            fsync foo
            falloc foo 8192 8192 keep_size
            fdatasync foo
        """,
        mechanisms=("falloc_keep_size_fdatasync",),
        table2_row=5,
        notes="Appendix workload 2.",
    ),
    KnownBug(
        "known-3", "Log replay fails after linking special file and fsync",
        ("btrfs",), Consequence.UNMOUNTABLE, "unmountable file system", 3, "4.15",
        workload_text="""
            mkdir A
            creat A/foo
            creat A/dummy
            fsync A/dummy
            rename A/foo A/bar
            link A/bar A/foo
            remove A/dummy
            creat A/dummy
            fsync A/dummy
        """,
        mechanisms=("unlink_recreate_replay_fail",),
        notes="Appendix workload 3; mkfifo modelled as a regular file create.",
    ),
    KnownBug(
        "known-4", "Direct write past EOF recovers file size zero",
        ("ext4",), Consequence.DATA_LOSS, "data inconsistency", 2, "3.12",
        workload_text="""
            creat foo
            write foo 16384 4096
            dwrite foo 0 4096
            fdatasync foo
        """,
        mechanisms=("dwrite_size_zero",),
        table2_row=5,
        notes="Appendix workload 4; a trailing fdatasync is added so the crash "
              "point falls after a persistence operation (B3's crash-point rule).",
    ),
    KnownBug(
        "known-5", "Unlink and re-create of a hard link makes the file system un-mountable",
        ("btrfs",), Consequence.UNMOUNTABLE, "unmountable file system", 2, "3.12",
        workload_text="""
            mkdir A
            creat A/foo
            link A/foo A/bar
            sync
            unlink A/bar
            creat A/bar
            fsync A/bar
        """,
        mechanisms=("unlink_recreate_replay_fail",),
        notes="Appendix workload 5; the Figure 1 bug inside a directory.",
    ),
    KnownBug(
        "known-6", "Cannot create new files after fsync and log recovery",
        ("btrfs",), Consequence.CORRUPTION, "corruption", 1, "4.16",
        workload_text="""
            mkdir A
            creat A/foo
            fsync A/foo
        """,
        mechanisms=("dir_replay_wrong_size",),
        notes="Appendix workload 6; the -EEXIST inode-allocation failure is not "
              "modelled mechanistically, so this bug may not reproduce.",
    ),
    KnownBug(
        "known-7", "Cross-directory rename and unlink lose files on log replay",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 3, "4.4",
        workload_text="""
            mkdir A
            mkdir B
            mkdir C
            creat A/foo
            link A/foo B/foolink
            creat B/bar
            sync
            unlink B/foolink
            rename B/bar C/bar
            fsync A/foo
        """,
        mechanisms=("rename_dest_not_logged",),
        notes="Appendix workload 7.",
    ),
    KnownBug(
        "known-8", "Renamed directory contents missing after fsync",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 2, "4.4",
        workload_text="""
            mkdir A
            mkdir A/B
            mkdir A/C
            creat A/B/foo
            creat A/B/bar
            sync
            rename A/B A/C
            mkdir A/B
            fsync A/B
        """,
        mechanisms=("rename_dest_not_logged", "dir_fsync_missing_new_children"),
        notes="Appendix workload 8.",
    ),
    KnownBug(
        "known-9", "Rename persists files in both directories",
        ("btrfs",), Consequence.ATOMICITY, "corruption", 3, "4.4",
        workload_text="""
            mkdir A
            mkdir B
            creat A/foo
            mkdir B/C
            creat B/baz
            sync
            link A/foo A/bar
            rename B/baz A/baz
            fsync A/foo
        """,
        mechanisms=("rename_source_not_removed",),
        notes="Appendix workload 9; the directory move (B/C) is simplified to the "
              "file move, which exhibits the same both-locations consequence.",
    ),
    KnownBug(
        "known-10", "Empty symlink after fsync of parent directory",
        ("btrfs",), Consequence.CORRUPTION, "corruption", 1, "4.4",
        workload_text="""
            mkdir A
            sync
            symlink foo A/bar
            fsync A
        """,
        mechanisms=("symlink_empty_after_fsync",),
        notes="Appendix workload 10.",
    ),
    KnownBug(
        "known-11", "Persisted file missing after rename over fsynced file",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 3, "4.4",
        workload_text="""
            mkdir A
            creat A/foo
            fsync A
            fsync A/foo
            rename A/foo A/bar
            creat A/foo
            fsync A/bar
        """,
        mechanisms=("rename_dest_not_logged",),
        notes="Appendix workload 11.",
    ),
    KnownBug(
        "known-12", "Hole punching with the no-holes feature loses the hole",
        ("btrfs",), Consequence.DATA_INCONSISTENCY, "data inconsistency", 3, "4.4",
        workload_text="""
            creat foo
            write foo 0 135168
            sync
            fpunch foo 98304 32768
            fpunch foo 32768 98304
            fsync foo
        """,
        mechanisms=("punch_hole_not_logged",),
        notes="Appendix workload 12; a sync is inserted after the initial write so "
              "the punched extents already live on disk.",
    ),
    KnownBug(
        "known-13", "Stale directory entries after fsync log replay (sibling fsync)",
        ("btrfs",), Consequence.DIR_UNREMOVABLE, "corruption", 2, "4.1.1",
        workload_text="""
            mkdir A
            creat A/foo
            creat A/bar
            sync
            link A/foo A/foolink
            link A/bar A/barlink
            fsync A/bar
        """,
        mechanisms=("link_not_logged", "dir_replay_wrong_size"),
        notes="Appendix workload 13; detected through the missing hard link "
              "rather than the directory item count.",
    ),
    KnownBug(
        "known-14", "Ranged msync loses earlier mmap write",
        ("btrfs",), Consequence.DATA_LOSS, "corruption", 2, "3.16",
        workload_text="""
            creat foo
            write foo 0 262144
            sync
            mwrite foo 0 4096
            mwrite foo 258048 4096
            msync foo 0 65536
            msync foo 196608 65536
        """,
        mechanisms=("ranged_msync_loses_other_range",),
        notes="Appendix workload 14.",
    ),
    KnownBug(
        "known-15", "Directory un-removable after removing a hard link and fsync",
        ("btrfs",), Consequence.DIR_UNREMOVABLE, "corruption", 2, "4.1.1",
        workload_text="""
            mkdir A
            sync
            creat A/foo
            link A/foo A/bar
            sync
            remove A/bar
            fsync A/foo
        """,
        mechanisms=("dir_replay_wrong_size",),
        notes="Appendix workload 15.",
    ),
    KnownBug(
        "known-16", "File size zero after adding a hard link and fsync",
        ("btrfs",), Consequence.DATA_LOSS, "corruption", 2, "3.13",
        workload_text="""
            mkdir A
            creat A/foo
            sync
            write A/foo 0 16384
            link A/foo A/bar
            fsync A/foo
        """,
        mechanisms=("link_clears_logged_data",),
        table2_row=2,
        notes="Appendix workload 16; the hard link is placed before the fsync so "
              "that the crash point (after the fsync) observes the bug.",
    ),
    KnownBug(
        "known-17", "Punched hole in a partial page not persisted",
        ("btrfs",), Consequence.DATA_INCONSISTENCY, "data inconsistency", 1, "3.13",
        workload_text="""
            creat foo
            write foo 0 16384
            fsync foo
            sync
            fpunch foo 8000 4096
            fsync foo
        """,
        mechanisms=("punch_hole_not_logged",),
        notes="Appendix workload 17.",
    ),
    KnownBug(
        "known-18", "Removed xattrs resurrected by fsync log replay",
        ("btrfs",), Consequence.DATA_INCONSISTENCY, "data inconsistency", 2, "3.13",
        workload_text="""
            creat foo
            setxattr foo user.u1 val1
            setxattr foo user.u2 val2
            setxattr foo user.u3 val3
            sync
            removexattr foo user.u2
            fsync foo
        """,
        mechanisms=("xattr_remove_not_replayed",),
        notes="Appendix workload 18.",
    ),
    KnownBug(
        "known-19", "Directory un-removable after unlinking one of multiple links",
        ("btrfs",), Consequence.DIR_UNREMOVABLE, "corruption", 2, "4.4",
        workload_text="""
            mkdir A
            creat A/foo
            sync
            link A/foo A/bar1
            link A/foo A/bar2
            sync
            unlink A/bar2
            fsync A/foo
        """,
        mechanisms=("dir_replay_wrong_size",),
        notes="Appendix workload 19.",
    ),
    KnownBug(
        "known-20", "File renamed out of a directory missing after the directory's fsync",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 3, "3.13",
        workload_text="""
            mkdir A
            mkdir A/B
            mkdir C
            creat A/B/foo
            sync
            rename A/B/foo C/foo
            creat A/bar
            fsync A
        """,
        mechanisms=("rename_dest_not_logged",),
        notes="Appendix workload 20.",
    ),
    KnownBug(
        "known-21", "Directory un-removable after directory fsync log recovery",
        ("btrfs",), Consequence.DIR_UNREMOVABLE, "corruption", 2, "3.13",
        workload_text="""
            mkdir A
            creat A/foo
            sync
            creat A/bar
            fsync A
            fsync A/bar
        """,
        mechanisms=("dir_replay_wrong_size",),
        table2_row=1,
        notes="Appendix workload 21 (Table 2 row 1).",
    ),
    KnownBug(
        "known-22", "Persisted file missing after rename onto an fsynced name",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 2, "3.12",
        workload_text="""
            mkdir A
            creat A/foo
            write A/foo 0 4096
            sync
            rename A/foo A/bar
            creat A/foo
            fsync A/foo
        """,
        mechanisms=("rename_dest_not_logged",),
        notes="Appendix workload 22; a create of the replacement file is added so "
              "the fsync target exists (matching the bug report's scenario).",
    ),
    KnownBug(
        "known-23", "Appended data lost on a multi-link file after fsync",
        ("btrfs",), Consequence.DATA_LOSS, "corruption", 2, "3.13",
        workload_text="""
            creat foo
            write foo 0 32768
            sync
            link foo bar
            sync
            write foo 32768 32768
            fsync foo
        """,
        mechanisms=("append_after_link_size",),
        notes="Appendix workload 23.",
    ),
    KnownBug(
        "known-24", "Directory un-removable after fsync of directory and renamed file",
        ("btrfs",), Consequence.DIR_UNREMOVABLE, "corruption", 2, "3.13",
        workload_text="""
            creat foo
            mkdir A
            fsync foo
            sync
            rename foo A/bar
            fsync A
            fsync A/bar
        """,
        mechanisms=("dir_replay_wrong_size",),
        notes="Appendix workload 24.",
    ),
    KnownBug(
        "known-25", "Data loss requiring dropcaches during the workload",
        ("btrfs",), Consequence.DATA_LOSS, "corruption", 3, "3.13",
        workload_text="",
        mechanisms=(),
        reproducible_by_b3=False,
        notes="One of the two studied bugs outside B3's bounds: it only manifests "
              "when the page cache is dropped mid-workload.",
    ),
    KnownBug(
        "known-26", "Un-mountable file system requiring ~3000 pre-existing hard links",
        ("btrfs",), Consequence.UNMOUNTABLE, "unmountable file system", 3, "3.13",
        workload_text="",
        mechanisms=(),
        reproducible_by_b3=False,
        notes="The second out-of-bounds bug: it needs a special initial image with "
              "enough hard links to force an external reflink.",
    ),
]


# --------------------------------------------------------------------------------------
# Appendix 9.2 / Table 5 — the new bugs found by CrashMonkey and ACE.
# --------------------------------------------------------------------------------------

_NEW: List[KnownBug] = [
    KnownBug(
        "new-1", "Rename atomicity broken (file disappears)",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 3, "4.16", introduced="2014",
        workload_text="""
            mkdir A
            creat A/bar
            fsync A/bar
            mkdir B
            creat B/bar
            rename B/bar A/bar
            creat A/foo
            fsync A/foo
        """,
        mechanisms=("rename_dest_not_logged",),
    ),
    KnownBug(
        "new-2", "Rename atomicity broken (file in both locations)",
        ("btrfs",), Consequence.ATOMICITY, "corruption", 3, "4.16", introduced="2018",
        workload_text="""
            mkdir A
            sync
            mkdir A/C
            rename A/C B
            creat B/bar
            fsync B/bar
            rename B/bar A/bar
            rename A B
            fsync B/bar
        """,
        mechanisms=("fsync_parent_committed_name", "rename_source_not_removed"),
        notes="A sync after the first mkdir is added so the original directory "
              "name is on disk, which is what lets the stale name reappear.",
    ),
    KnownBug(
        "new-3", "Directory not persisted by fsync",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 3, "4.16", introduced="2014",
        workload_text="""
            mkdir A
            mkdir B
            mkdir A/C
            creat B/foo
            fsync B/foo
            link B/foo A/C/foo
            fsync A
        """,
        mechanisms=("dir_fsync_missing_new_children",),
    ),
    KnownBug(
        "new-4", "Rename not persisted by fsync",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 3, "4.16", introduced="2014",
        workload_text="""
            mkdir A
            sync
            rename A B
            creat B/foo
            fsync B/foo
            fsync B
        """,
        mechanisms=("fsync_parent_committed_name",),
    ),
    KnownBug(
        "new-5", "Hard links not persisted by fsync",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 2, "4.16", introduced="2014",
        workload_text="""
            mkdir A
            mkdir B
            creat A/foo
            link A/foo B/foo
            fsync A/foo
            fsync B/foo
        """,
        mechanisms=("link_not_logged",),
    ),
    KnownBug(
        "new-6", "Directory entry missing after fsync on directory",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 2, "4.16", introduced="2014",
        workload_text="""
            mkdir test
            mkdir test/A
            creat test/foo
            creat test/A/foo
            fsync test/A/foo
            fsync test
        """,
        mechanisms=("dir_fsync_missing_new_children",),
    ),
    KnownBug(
        "new-7", "Fsync on file does not persist all its paths",
        ("btrfs",), Consequence.FILE_MISSING, "corruption", 1, "4.16", introduced="2014",
        workload_text="""
            creat foo
            mkdir A
            link foo A/bar
            fsync foo
        """,
        mechanisms=("link_not_logged",),
    ),
    KnownBug(
        "new-8", "Allocated blocks lost after fsync",
        ("btrfs",), Consequence.DATA_LOSS, "data inconsistency", 1, "4.16", introduced="2014",
        workload_text="""
            creat foo
            write foo 0 16384
            fsync foo
            falloc foo 16384 4096 keep_size
            fsync foo
        """,
        mechanisms=("falloc_keep_size_lost",),
    ),
    KnownBug(
        "new-9", "File recovers to incorrect size (ZERO_RANGE with KEEP_SIZE)",
        ("F2FS",), Consequence.WRONG_SIZE, "data inconsistency", 1, "4.16", introduced="2015",
        workload_text="""
            creat foo
            write foo 0 16384
            fsync foo
            fzero foo 16384 4096 keep_size
            fsync foo
        """,
        mechanisms=("fzero_keep_size_wrong_size",),
    ),
    KnownBug(
        "new-10", "Persisted file ends up in a different directory",
        ("F2FS",), Consequence.FILE_MISSING, "corruption", 2, "4.16", introduced="2016",
        workload_text="""
            mkdir A
            sync
            rename A B
            creat B/foo
            fsync B/foo
        """,
        mechanisms=("rename_dir_fsync_old_parent", "fsync_parent_committed_name"),
    ),
    KnownBug(
        "new-11", "FSCQ fdatasync loses appended data",
        ("FSCQ",), Consequence.DATA_LOSS, "data inconsistency", 1, "4.16", introduced="2018",
        workload_text="""
            creat foo
            write foo 0 4096
            sync
            write foo 4096 4096
            fdatasync foo
        """,
        mechanisms=("fdatasync_append_lost",),
    ),
]


#: All bugs keyed by id.
BUGS: Dict[str, KnownBug] = {bug.bug_id: bug for bug in _KNOWN + _NEW}


def known_bugs() -> List[KnownBug]:
    """The 26 previously reported bugs (Appendix 9.1 + the two out-of-bounds ones)."""
    return list(_KNOWN)


def new_bugs() -> List[KnownBug]:
    """The 11 new bugs found by CrashMonkey and ACE (Table 5)."""
    return list(_NEW)


def all_bugs() -> List[KnownBug]:
    return _KNOWN + _NEW


def get_bug(bug_id: str) -> KnownBug:
    try:
        return BUGS[bug_id]
    except KeyError:
        raise KeyError(f"unknown bug id {bug_id!r}") from None


def bugs_for_filesystem(fs_name: str, include_new: bool = True) -> List[KnownBug]:
    """Bugs applicable to one (real or simulator) file-system name."""
    from ..fs.registry import models, resolve_fs_name

    real_name = models(resolve_fs_name(fs_name)).lower()
    source = all_bugs() if include_new else known_bugs()
    return [
        bug for bug in source
        if any(name.lower() == real_name for name in bug.filesystems)
    ]


def table2_bugs() -> List[KnownBug]:
    """The five example bugs shown in Table 2, in row order."""
    rows = [bug for bug in all_bugs() if bug.table2_row is not None]
    return sorted(rows, key=lambda bug: bug.table2_row)
