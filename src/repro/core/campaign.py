"""B3 campaigns: generate bounded workloads with ACE and test them with CrashMonkey.

This is the top of the stack — the equivalent of the paper's testing strategy
(§5.3): pick bounds, exhaustively generate workloads, run every workload
through CrashMonkey against the target file system, and post-process the
resulting bug reports.

The campaign itself is a thin façade: execution is delegated to the streaming
engine (:mod:`repro.engine`), which pulls workloads lazily from the
synthesizer, dispatches them in chunks to a serial or process-pool backend,
and aggregates results incrementally.  Peak memory is O(in-flight chunk), not
O(workload space).
"""

from __future__ import annotations

import contextlib
import os
import tempfile
from dataclasses import dataclass, replace
from typing import Iterable, Iterator, List, Optional, Sequence

from ..ace.adapter import CrashMonkeyAdapter
from ..ace.bounds import Bounds, seq1_bounds, seq2_bounds
from ..ace.synthesizer import AceSynthesizer
from ..crashmonkey.harness import CrashMonkey
from ..engine.backends import SerialBackend, make_backend
from ..engine.engine import DEFAULT_CHUNK_SIZE, CampaignEngine, EngineRun, ProgressCallback
from ..engine.spec import HarnessSpec
from ..fs.bugs import BugConfig
from ..fs.registry import models, resolve_fs_name
from ..workload.workload import Workload
from .results import CampaignResult


@dataclass
class CampaignConfig:
    """Configuration of one testing campaign."""

    fs_name: str = "btrfs"
    bugs: Optional[BugConfig] = None
    bounds: Optional[Bounds] = None
    #: cap on the number of generated workloads to test (None = exhaustive)
    max_workloads: Optional[int] = None
    #: spread the tested workloads over the whole space instead of taking a prefix
    sample: bool = False
    device_blocks: int = 4096
    only_last_checkpoint: bool = False
    #: consistency checks to run, by registered name (None = all registered)
    checks: Optional[Sequence[str]] = None
    #: consistency checks to skip, by registered name
    skip_checks: Sequence[str] = ()
    #: crash-scenario plan per persistence point ("prefix", "reorder" or "torn")
    crash_plan: str = "prefix"
    #: reorder-plan bound: blocks allowed to deviate per scenario
    reorder_bound: int = 2
    #: torn-plan bound: in-flight writes (metadata-tagged first) torn per checkpoint
    torn_bound: int = 2
    #: skip crash states at checkpoints that provably repeat an earlier one
    dedup_scenarios: bool = True
    #: record shared ACE-sibling operation prefixes once per worker and chunk
    #: prefix-affinely (profiles stay byte-for-byte identical either way);
    #: None follows the recorder's default (on, unless REPRO_NO_SHARE_PREFIXES
    #: is set in the environment)
    share_prefixes: Optional[bool] = None
    #: resume each workload's crash-state build from the cached cursor fork
    #: on its recorded stream's shared sibling prefix (crash states stay
    #: byte-for-byte identical either way); None follows the replayer's
    #: default (on, unless REPRO_NO_SHARE_REPLAY is set in the environment)
    share_replay: Optional[bool] = None
    #: skip crash states already tested by an earlier workload on the same
    #: worker (byte-identical states + expectations); identical recurring
    #: states are counted once, so raw report counts drop accordingly
    cross_workload_dedup: bool = False
    #: path to a disk-backed sighting database shared by all workers,
    #: promoting cross-workload dedup to campaign-global under a pool backend
    #: (None with processes > 1 auto-provisions a temporary one per run)
    global_dedup_cache: Optional[str] = None
    #: run the static mechanism analysis over every recorded stream; None
    #: enables it exactly when ``crash_plan == "mechanism"``, True forces it
    #: alongside an exhaustive plan (overhead measurement without pruning)
    analyze_mechanisms: Optional[bool] = None
    #: resident-byte budget for each worker harness's trie spines; frozen
    #: nodes beyond it spill to disk and rehydrate transparently (results
    #: are byte-for-byte identical either way); None follows the spill
    #: store's default (generous, REPRO_SPINE_BUDGET can lower it)
    spine_memory_budget: Optional[int] = None
    #: directory spilled spine nodes are written to, shared by every worker
    #: (None = a private temporary directory per worker; the durable runner
    #: provisions one beside the campaign state database)
    spine_spill_dir: Optional[str] = None
    #: worker processes; 1 = serial in-process, >1 = process-pool backend
    processes: int = 1
    #: workloads per dispatched chunk (None = engine default)
    chunk_size: Optional[int] = None


class B3Campaign:
    """Run the generate → test → post-process pipeline."""

    def __init__(self, config: CampaignConfig):
        self.config = config
        self.fs_name = resolve_fs_name(config.fs_name)
        self.fs_model = models(self.fs_name)
        self.bounds = config.bounds if config.bounds is not None else seq2_bounds()
        self.spec = HarnessSpec(
            fs_name=self.fs_name,
            bugs=config.bugs,
            device_blocks=config.device_blocks,
            only_last_checkpoint=config.only_last_checkpoint,
            checks=tuple(config.checks) if config.checks is not None else None,
            skip_checks=tuple(config.skip_checks),
            crash_plan=config.crash_plan,
            reorder_bound=config.reorder_bound,
            torn_bound=config.torn_bound,
            dedup_scenarios=config.dedup_scenarios,
            share_prefixes=config.share_prefixes,
            share_replay=config.share_replay,
            cross_workload_dedup=config.cross_workload_dedup,
            global_dedup_cache=config.global_dedup_cache,
            analyze_mechanisms=config.analyze_mechanisms,
            spine_memory_budget=config.spine_memory_budget,
            spine_spill_dir=config.spine_spill_dir,
        )
        self._harness: Optional[CrashMonkey] = None
        #: engine bookkeeping of the most recent :meth:`run` (chunk stats, wall clock)
        self.last_run: Optional[EngineRun] = None

    @property
    def harness(self) -> CrashMonkey:
        """The campaign's serial-mode harness, built from the spec on demand.

        Pool-mode runs never touch it — workers build their own harness from
        the (pickled) spec.
        """
        if self._harness is None:
            self._harness = self.spec.build()
        return self._harness

    # ------------------------------------------------------------------ workload supply

    def iter_workloads(self) -> Iterator[Workload]:
        """Stream the workloads this campaign will test (never materialized)."""
        synthesizer = AceSynthesizer(self.bounds)
        return synthesizer.stream(limit=self.config.max_workloads,
                                  sample=self.config.sample)

    def generate_workloads(self) -> List[Workload]:
        """Materialize the campaign's workloads (prefer :meth:`iter_workloads`)."""
        return list(self.iter_workloads())

    # ------------------------------------------------------------------ execution

    def _engine(self, progress: Optional[ProgressCallback],
                spec: Optional[HarnessSpec] = None) -> CampaignEngine:
        if self.config.processes <= 1:
            # Reuse the campaign's own harness across the whole run.
            backend = SerialBackend(harness=self.harness)
        else:
            backend = make_backend(self.config.processes)
        chunk_size = (self.config.chunk_size if self.config.chunk_size is not None
                      else DEFAULT_CHUNK_SIZE)
        return CampaignEngine(
            spec if spec is not None else self.spec,
            backend=backend,
            chunk_size=chunk_size,
            progress=progress,
        )

    def _run_spec(self, stack: contextlib.ExitStack) -> HarnessSpec:
        """The spec this run dispatches, with a dedup database provisioned.

        A pool run with cross-workload dedup but no explicit cache path gets
        a temporary campaign-global sqlite database for the duration of the
        run: without it each worker's sightings are private, and a sibling
        family split across workers re-tests states another worker already
        covered.  Serial runs keep the in-memory cache (same scope, no I/O).
        """
        if (self.config.processes <= 1
                or not self.config.cross_workload_dedup
                or self.spec.global_dedup_cache is not None):
            return self.spec
        tmpdir = stack.enter_context(
            tempfile.TemporaryDirectory(prefix="repro-dedup-")
        )
        return replace(self.spec, global_dedup_cache=os.path.join(tmpdir, "sightings.sqlite"))

    def run(self, workloads: Optional[Iterable[Workload]] = None,
            progress: Optional[ProgressCallback] = None) -> CampaignResult:
        """Run the campaign; workloads are streamed from ACE unless supplied.

        Every workload flows through the CrashMonkey adapter first: invalid
        ones are dropped from testing but surfaced in the result's
        ``invalid_workloads`` count (never silently swallowed), which also
        keeps a bad hand-supplied workload from aborting the whole run.
        """
        source = workloads if workloads is not None else self.iter_workloads()
        adapter = CrashMonkeyAdapter(self.fs_name)
        label = self.bounds.label or f"seq-{self.bounds.seq_length}"
        with contextlib.ExitStack() as stack:
            spec = self._run_spec(stack)
            run = self._engine(progress, spec).run(adapter.adapt_stream(source), label=label)
        run.result.invalid_workloads = adapter.invalid_workloads
        self.last_run = run
        return run.result


def quick_campaign(fs_name: str = "btrfs", seq_length: int = 1,
                   max_workloads: Optional[int] = None,
                   bugs: Optional[BugConfig] = None,
                   sample: bool = False,
                   processes: int = 1) -> CampaignResult:
    """Convenience wrapper: the "single line command to run seq-1 workloads".

    ``quick_campaign()`` with the defaults exhaustively tests every seq-1
    workload against the btrfs-like file system and returns the aggregated
    result — the same entry point the paper advertises for trying the tools.
    Pass ``processes > 1`` to spread testing over a process pool.
    """
    bounds = seq1_bounds() if seq_length == 1 else seq2_bounds()
    if seq_length not in (1, 2):
        bounds = Bounds(seq_length=seq_length, label=f"seq-{seq_length}")
    config = CampaignConfig(
        fs_name=fs_name, bugs=bugs, bounds=bounds,
        max_workloads=max_workloads, sample=sample, processes=processes,
    )
    return B3Campaign(config).run()
