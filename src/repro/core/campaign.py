"""B3 campaigns: generate bounded workloads with ACE and test them with CrashMonkey.

This is the top of the stack — the equivalent of the paper's testing strategy
(§5.3): pick bounds, exhaustively generate workloads, run every workload
through CrashMonkey against the target file system, and post-process the
resulting bug reports.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..ace.bounds import Bounds, seq1_bounds, seq2_bounds
from ..ace.synthesizer import AceSynthesizer
from ..crashmonkey.harness import CrashMonkey
from ..fs.bugs import BugConfig
from ..fs.registry import models, resolve_fs_name
from ..workload.workload import Workload
from .results import CampaignResult


@dataclass
class CampaignConfig:
    """Configuration of one testing campaign."""

    fs_name: str = "btrfs"
    bugs: Optional[BugConfig] = None
    bounds: Optional[Bounds] = None
    #: cap on the number of generated workloads to test (None = exhaustive)
    max_workloads: Optional[int] = None
    #: spread the tested workloads over the whole space instead of taking a prefix
    sample: bool = False
    device_blocks: int = 4096
    only_last_checkpoint: bool = False


class B3Campaign:
    """Run the generate → test → post-process pipeline."""

    def __init__(self, config: CampaignConfig):
        self.config = config
        self.fs_name = resolve_fs_name(config.fs_name)
        self.fs_model = models(self.fs_name)
        self.bounds = config.bounds if config.bounds is not None else seq2_bounds()
        self.harness = CrashMonkey(
            self.fs_name,
            bugs=config.bugs,
            device_blocks=config.device_blocks,
            only_last_checkpoint=config.only_last_checkpoint,
        )

    # ------------------------------------------------------------------ workload supply

    def generate_workloads(self) -> List[Workload]:
        """Generate the workloads this campaign will test."""
        synthesizer = AceSynthesizer(self.bounds)
        if self.config.max_workloads is None:
            return list(synthesizer.generate())
        if self.config.sample:
            return synthesizer.sample(self.config.max_workloads)
        return list(synthesizer.generate(limit=self.config.max_workloads))

    # ------------------------------------------------------------------ execution

    def run(self, workloads: Optional[Sequence[Workload]] = None) -> CampaignResult:
        """Run the campaign; workloads are generated unless supplied."""
        result = CampaignResult(
            fs_name=self.fs_name,
            fs_model=self.fs_model,
            label=self.bounds.label or f"seq-{self.bounds.seq_length}",
        )
        generation_start = time.perf_counter()
        if workloads is None:
            workloads = self.generate_workloads()
        result.generation_seconds = time.perf_counter() - generation_start

        testing_start = time.perf_counter()
        for workload in workloads:
            result.results.append(self.harness.test_workload(workload))
        result.testing_seconds = time.perf_counter() - testing_start
        return result


def quick_campaign(fs_name: str = "btrfs", seq_length: int = 1,
                   max_workloads: Optional[int] = None,
                   bugs: Optional[BugConfig] = None,
                   sample: bool = False) -> CampaignResult:
    """Convenience wrapper: the "single line command to run seq-1 workloads".

    ``quick_campaign()`` with the defaults exhaustively tests every seq-1
    workload against the btrfs-like file system and returns the aggregated
    result — the same entry point the paper advertises for trying the tools.
    """
    bounds = seq1_bounds() if seq_length == 1 else seq2_bounds()
    if seq_length not in (1, 2):
        bounds = Bounds(seq_length=seq_length, label=f"seq-{seq_length}")
    config = CampaignConfig(
        fs_name=fs_name, bugs=bugs, bounds=bounds,
        max_workloads=max_workloads, sample=sample,
    )
    return B3Campaign(config).run()
