"""Post-processing of bug reports (paper §5.3, Figure 5).

A single underlying bug typically makes many generated workloads fail.  The
paper mitigates this in two ways, both implemented here:

* **grouping** — bug reports are grouped by the workload *skeleton* (the
  sequence of core operations) and the consequence, so four reports that only
  differ in which file from the argument set they used collapse into one
  group to inspect;
* **known-bug matching** — ACE keeps a database of already-found bugs (core
  operations + consequence); new reports that match it are filtered out so
  only genuinely new findings reach the user.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..crashmonkey.report import BugReport
from .known_bugs import KnownBug


GroupKey = Tuple[Tuple[str, ...], str]


@dataclass
class ReportGroup:
    """All bug reports that share a skeleton and a consequence."""

    skeleton: Tuple[str, ...]
    consequence: str
    reports: List[BugReport] = field(default_factory=list)

    @property
    def representative(self) -> BugReport:
        return self.reports[0]

    def __len__(self) -> int:
        return len(self.reports)

    def describe(self) -> str:
        ops = ", ".join(self.skeleton) or "<no core ops>"
        return (
            f"[{self.consequence}] skeleton ({ops}): {len(self.reports)} report(s); "
            f"representative workload {self.representative.workload.display_name()}"
        )


def group_reports(reports: Iterable[BugReport]) -> List[ReportGroup]:
    """Group bug reports by (skeleton, consequence) — the Figure-5 GROUP BY."""
    groups: "OrderedDict[GroupKey, ReportGroup]" = OrderedDict()
    for report in reports:
        key = report.group_key()
        if key not in groups:
            groups[key] = ReportGroup(skeleton=key[0], consequence=key[1])
        groups[key].reports.append(report)
    return list(groups.values())


@dataclass
class KnownBugDatabase:
    """The database of already-found bugs ACE consults before reporting.

    Entries are (set of core operations, consequence) pairs: the same
    matching rule §5.3 describes.
    """

    entries: Set[Tuple[Tuple[str, ...], str]] = field(default_factory=set)

    @classmethod
    def from_known_bugs(cls, bugs: Sequence[KnownBug]) -> "KnownBugDatabase":
        database = cls()
        for bug in bugs:
            if not bug.workload_text:
                continue
            database.add_workload_signature(
                tuple(sorted(bug.workload().operations_used())), bug.consequence
            )
        return database

    def add_workload_signature(self, operations: Tuple[str, ...], consequence: str) -> None:
        self.entries.add((tuple(sorted(operations)), consequence))

    def add_report(self, report: BugReport) -> None:
        self.add_workload_signature(report.workload.operations_used(), report.consequence)

    def matches(self, report: BugReport) -> bool:
        signature = (tuple(sorted(report.workload.operations_used())), report.consequence)
        return signature in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def filter_new_reports(reports: Iterable[BugReport],
                       database: Optional[KnownBugDatabase] = None) -> List[BugReport]:
    """Drop reports matching the known-bug database (and feed it the rest)."""
    database = database if database is not None else KnownBugDatabase()
    fresh: List[BugReport] = []
    for report in reports:
        if database.matches(report):
            continue
        fresh.append(report)
        database.add_report(report)
    return fresh


def deduplicate(reports: Iterable[BugReport],
                database: Optional[KnownBugDatabase] = None) -> List[ReportGroup]:
    """Full Figure-5 pipeline: filter against the database, then group."""
    return group_reports(filter_new_reports(reports, database))
