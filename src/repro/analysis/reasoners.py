"""Per-family mechanism reasoners for the incremental analysis cursor.

The journal-commit and checkpoint-generation families live directly on
:class:`~repro.analysis.mechanisms.AnalysisCursor` (they predate this
module); the two families added here follow the Silhouette-style split of
one small state machine per mechanism:

* :class:`LogStructuredWriteReasoner` — append-only segment records carrying
  a monotonic sequence tag (lsn).  Recovery scans the segment area to the
  last valid record, so a crash can only manifest as record-boundary suffix
  loss: one dropped-record state per record replaces per-block enumeration.
* :class:`ReplicatedMetadataReasoner` — N-way mirrored metadata blocks (the
  2-way superblock pair) recovered newest-wins.  A crash is observable only
  when it straddles the replica writes of one transition, so one
  representative state per replica-set transition suffices.

Both reasoners claim *optimistically*: a batch that is not visibly sealed by
a flush is still claimed as sealed at its last write, and a mirror is
trusted once one full replica pair has been observed.  Soundness does not
rest on these claims — the cross-mechanism contract auditor
(:mod:`repro.analysis.audit`) re-checks every claim against the stream's
actual fence/FUA edges and demotes violated ones to exhaustive windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..fs import layout
from .mechanisms import MechanismEvidence

#: claimed fence edges are capped like the cursor's fence_edges list
_CLAIM_CAP = 64

LSW_INVARIANT = (
    "segment records persist append-only under a strictly increasing lsn and "
    "recovery scans to the last valid record, so a crash can only lose a "
    "record-boundary suffix — one dropped-record state per record"
)
REPLICA_INVARIANT = (
    "metadata is mirrored across a replica set committed FUA per transition "
    "and recovered newest-wins, so a crash is observable only when it "
    "straddles the replica writes of one transition — one representative "
    "state per replica-set transition"
)


@dataclass
class LogStructuredWriteReasoner:
    """Infers the log-structured-write (LSW) mechanism from segment writes."""

    writes: int = 0            #: segment-area envelope writes that parsed
    records: int = 0           #: envelope headers with index == 0
    summaries: int = 0         #: lazily-written segment-usage summary writes
    malformed: int = 0         #: segment-area writes whose envelope broke
    monotonic_breaks: int = 0  #: lsn not strictly increasing within an era
    last_lsn: int = 0
    block_min: Optional[int] = None
    block_max: Optional[int] = None
    fenced_epochs: int = 0
    unfenced_epochs: int = 0
    _in_flight: int = 0        #: segment writes since the last fence
    _batch_open: bool = False  #: a record batch awaits its sealing flush
    _batch_last_index: int = -1
    #: per-batch claimed sealing fence edges.  A batch sealed by a real flush
    #: claims that flush's stream index; an unsealed batch *optimistically*
    #: claims its own last write — a claim the contract auditor will reject,
    #: because a write index is not a fence edge.
    claimed_fences: List[int] = field(default_factory=list)

    def copy(self) -> "LogStructuredWriteReasoner":
        twin = LogStructuredWriteReasoner(**{
            name: value for name, value in self.__dict__.items()
            if name != "claimed_fences"
        })
        twin.claimed_fences = list(self.claimed_fences)
        return twin

    def to_dict(self) -> dict:
        payload = {
            name: value for name, value in self.__dict__.items()
            if name != "claimed_fences"
        }
        payload["claimed_fences"] = list(self.claimed_fences)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "LogStructuredWriteReasoner":
        data = dict(payload)
        data["claimed_fences"] = list(data.get("claimed_fences", []))
        return cls(**data)

    # -- stream events ------------------------------------------------------

    def observe_segment(self, index: int, header: dict, block: int) -> None:
        self.writes += 1
        self._in_flight += 1
        self._batch_open = True
        self._batch_last_index = index
        if self.block_min is None or block < self.block_min:
            self.block_min = block
        if self.block_max is None or block > self.block_max:
            self.block_max = block
        if header.get("index") == 0:
            self.records += 1
            lsn = int(header.get("lsn", 0))
            if lsn <= self.last_lsn:
                self.monotonic_breaks += 1
            self.last_lsn = lsn

    def observe_summary(self, block: int) -> None:
        """A segment-usage summary write: part of the protocol, outside the
        durability contract — it neither opens nor closes a record batch."""
        self.summaries += 1
        if self.block_min is None or block < self.block_min:
            self.block_min = block
        if self.block_max is None or block > self.block_max:
            self.block_max = block

    def observe_malformed(self) -> None:
        self.malformed += 1
        self._close_batch_unsealed()

    def observe_other_write(self) -> None:
        """A non-segment write arrived while a record batch was open."""
        self._close_batch_unsealed()

    def note_fence(self, index: int) -> None:
        if self._batch_open:
            self._claim(index)
            self._batch_open = False
        if self._in_flight:
            self.fenced_epochs += 1
            self._in_flight = 0

    def note_checkpoint(self) -> None:
        self._close_batch_unsealed()
        if self._in_flight:
            self.unfenced_epochs += 1
            self._in_flight = 0

    def note_area_reset(self) -> None:
        """A checkpoint commit reset the segment area; the lsn era restarts."""
        self.last_lsn = 0

    def _close_batch_unsealed(self) -> None:
        if self._batch_open:
            self._claim(self._batch_last_index)
            self._batch_open = False

    def _claim(self, index: int) -> None:
        if len(self.claimed_fences) < _CLAIM_CAP:
            self.claimed_fences.append(index)

    # -- evidence -----------------------------------------------------------

    def finish(self) -> Optional[MechanismEvidence]:
        if not self.records:
            return None
        confidence = (
            self.writes / (self.writes + self.malformed)
            if self.writes + self.malformed else 0.0
        )
        return MechanismEvidence(
            mechanism="log-structured-write",
            block_ranges=((self.block_min, self.block_max),),
            fence_edges=tuple(self.claimed_fences),
            epochs=self.fenced_epochs + self.unfenced_epochs,
            unfenced_epochs=self.unfenced_epochs,
            confidence=confidence,
            invariant=LSW_INVARIANT,
        )


@dataclass
class ReplicatedMetadataReasoner:
    """Infers the replicated-metadata mechanism from the superblock pair."""

    replica_writes: int = 0    #: parsed writes to the replica superblock
    primary_commits: int = 0   #: parsed writes to the primary superblock
    transitions: int = 0       #: primary generation advances
    paired_transitions: int = 0  #: transitions whose replica caught up
    unfenced_transitions: int = 0  #: transitions whose primary was not FUA
    last_primary_generation: Optional[int] = None
    last_replica_generation: Optional[int] = None
    #: claimed commit edges: the primary write of each transition, claimed as
    #: a FUA fence edge whether or not the write actually carried FUA (the
    #: contract auditor rejects the claim when it did not).
    claimed_fences: List[int] = field(default_factory=list)

    def copy(self) -> "ReplicatedMetadataReasoner":
        twin = ReplicatedMetadataReasoner(**{
            name: value for name, value in self.__dict__.items()
            if name != "claimed_fences"
        })
        twin.claimed_fences = list(self.claimed_fences)
        return twin

    def to_dict(self) -> dict:
        payload = {
            name: value for name, value in self.__dict__.items()
            if name != "claimed_fences"
        }
        payload["claimed_fences"] = list(self.claimed_fences)
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ReplicatedMetadataReasoner":
        data = dict(payload)
        data["claimed_fences"] = list(data.get("claimed_fences", []))
        return cls(**data)

    # -- stream events ------------------------------------------------------

    def observe_primary(self, index: int, payload: Optional[dict], is_fua: bool) -> None:
        if payload is None:
            return
        self.primary_commits += 1
        generation = payload.get("generation")
        if generation is None:
            return
        last = self.last_primary_generation
        if last is not None and generation > last:
            self.transitions += 1
            if not is_fua:
                self.unfenced_transitions += 1
            if len(self.claimed_fences) < _CLAIM_CAP:
                self.claimed_fences.append(index)
            if self.last_replica_generation == generation:
                self.paired_transitions += 1
        self.last_primary_generation = generation

    def observe_replica(self, payload: Optional[dict]) -> None:
        if payload is None:
            return
        self.replica_writes += 1
        generation = payload.get("generation")
        if generation is None:
            return
        if (
            generation == self.last_primary_generation
            and generation != self.last_replica_generation
            and self.transitions
        ):
            self.paired_transitions += 1
        self.last_replica_generation = generation

    # -- evidence -----------------------------------------------------------

    def finish(self) -> Optional[MechanismEvidence]:
        if not self.replica_writes:
            return None
        # Optimistic by design: once one full replica pair has been observed
        # the mirror protocol is trusted for the whole stream.  The contract
        # auditor recomputes the actual pair coverage and demotes the claim
        # when the mirror lagged.
        confidence = 1.0 if self.paired_transitions or not self.transitions else 0.5
        return MechanismEvidence(
            mechanism="replicated-metadata",
            block_ranges=(
                (layout.SUPERBLOCK_BLOCK, layout.SUPERBLOCK_BLOCK),
                (layout.REPLICA_SUPERBLOCK_BLOCK, layout.REPLICA_SUPERBLOCK_BLOCK),
            ),
            fence_edges=tuple(self.claimed_fences),
            epochs=self.transitions,
            unfenced_epochs=self.unfenced_transitions,
            confidence=confidence,
            invariant=REPLICA_INVARIANT,
        )
