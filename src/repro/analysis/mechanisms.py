"""Mechanism inference over recorded write streams.

Everything here is *content-based*: the recorded requests' payloads are
parsed with the same envelope/superblock codecs recovery itself uses
(:func:`repro.fs.layout.parse_chunk_header`, the superblock JSON).  The
debugging ``tag`` field on :class:`~repro.storage.io_request.IORequest` is
deliberately ignored — the replayer ignores it too, so an analysis keyed on
tags could claim invariants the storage state does not actually carry.

Two reasoners ship:

* **journal-commit** — log-area chunk envelopes (``B3-LOG`` magic) appended
  in sequence and persist-fenced by a cache flush form a commit epoch.
  Recovery scans the log from the start and stops at the first
  missing/foreign block, so a crash can only lose a *suffix* of committed
  entries: every drop combination inside one entry (and everything after it)
  collapses to "that entry never persisted".
* **checkpoint-generation** — checkpoint-area chunk envelopes (``B3-CKPT``)
  written to alternating A/B areas under monotonically increasing generation
  counters, committed by a FUA superblock naming the new generation.
  Recovery validates every chunk header: any dropped chunk falls back to the
  previous generation's area (one representative state), while a sector-torn
  chunk passes the header check and fails reassembly (unmountable — the
  state the ``missing_flush_before_fua`` class of bugs leaks).

The :class:`AnalysisCursor` is an incremental state machine (copyable, so the
shared replay trie can snapshot it at flush/checkpoint barriers) and
:func:`analyze_io_log` is the one-shot convenience over a full stream.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

from ..fs import layout
from ..storage.io_request import IORequest


class WriteClass:
    """Content classes of a recorded write (string constants, not an enum,
    so reports serialize to plain JSON)."""

    JOURNAL = "journal"          #: log-area chunk envelope (``B3-LOG``)
    CHECKPOINT = "checkpoint"    #: checkpoint-area chunk envelope (``B3-CKPT``)
    SUPERBLOCK = "superblock"    #: block 0 superblock JSON (``B3-REPRO-FS``)
    SEGMENT = "segment"          #: LSW segment-record envelope (``B3-SEG``)
    SEGMENT_SUMMARY = "segment-summary"  #: lazily-written segment-usage cache
    REPLICA = "replica"          #: replica-superblock JSON at its mirror block
    DATA = "data"                #: anything else (file data, unrecognized)


def _first_sector(data) -> bytes:
    raw = data[: layout.SECTOR_SIZE] if data is not None else b""
    return raw if isinstance(raw, bytes) else bytes(raw)


def _decode_block_json(data) -> Optional[dict]:
    raw = data if isinstance(data, bytes) else bytes(data)
    try:
        payload = json.loads(raw.rstrip(b"\x00").decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    return payload if isinstance(payload, dict) else None


def classify_write(request: IORequest) -> Tuple[str, Optional[dict]]:
    """Classify one recorded write by payload content.

    Returns ``(write_class, header)`` where ``header`` is the parsed chunk
    envelope identity (``{"generation", "index", "magic"}``) for journal and
    checkpoint writes, the parsed superblock JSON for superblock writes, and
    ``None`` for data.  Classification requires the payload *and* the target
    region to agree — a data block that happens to contain envelope-shaped
    bytes is not in the log area and stays data.
    """
    if not request.is_write or request.block is None or request.data is None:
        return WriteClass.DATA, None
    block = request.block
    if block == layout.SUPERBLOCK_BLOCK or block == layout.REPLICA_SUPERBLOCK_BLOCK:
        payload = _decode_block_json(request.data)
        if payload is not None and payload.get("magic") == layout.SUPERBLOCK_MAGIC:
            if block == layout.SUPERBLOCK_BLOCK:
                return WriteClass.SUPERBLOCK, payload
            return WriteClass.REPLICA, payload
        return WriteClass.DATA, None
    header = layout.parse_chunk_header(_first_sector(request.data))
    in_log = layout.LOG_START <= block < layout.SEGMENT_START
    in_checkpoint = layout.CHECKPOINT_A_START <= block < layout.LOG_START
    if header is not None:
        if header["magic"] == layout.LOG_MAGIC and in_log:
            return WriteClass.JOURNAL, header
        if header["magic"] == layout.CHECKPOINT_MAGIC and in_checkpoint:
            return WriteClass.CHECKPOINT, header
        return WriteClass.DATA, None
    if block == layout.SEGMENT_SUMMARY_BLOCK:
        payload = _decode_block_json(request.data)
        if payload is not None and payload.get("magic") == layout.SEGMENT_SUMMARY_MAGIC:
            return WriteClass.SEGMENT_SUMMARY, payload
        return WriteClass.DATA, None
    segment_header = layout.parse_segment_header(_first_sector(request.data))
    in_segment = layout.SEGMENT_START <= block < layout.SEGMENT_SUMMARY_BLOCK
    if (
        segment_header is not None
        and segment_header["magic"] == layout.SEGMENT_MAGIC
        and in_segment
    ):
        return WriteClass.SEGMENT, segment_header
    return WriteClass.DATA, None


# ----------------------------------------------------------------------- report


@dataclass(frozen=True)
class MechanismEvidence:
    """One inferred persistence mechanism and the trace facts supporting it."""

    #: mechanism kind: ``"journal-commit"`` or ``"checkpoint-generation"``
    mechanism: str
    #: participating device block range(s), inclusive ``(start, end)`` pairs
    block_ranges: Tuple[Tuple[int, int], ...]
    #: stream indices of the fence edges (flush barriers / FUA commits) that
    #: persist-fence this mechanism's write groups, capped for report size
    fence_edges: Tuple[int, ...]
    #: commit epochs observed (journal entries fenced / generations committed)
    epochs: int
    #: epochs whose writes were still in flight at a persistence point — the
    #: signature of a missing-barrier bug (and the planner's pruning target)
    unfenced_epochs: int
    #: fraction of this mechanism's observed structure that parsed cleanly
    confidence: float
    #: the crash-consistency invariant the mechanism implies
    invariant: str

    def to_dict(self) -> dict:
        return {
            "mechanism": self.mechanism,
            "block_ranges": [list(pair) for pair in self.block_ranges],
            "fence_edges": list(self.fence_edges),
            "epochs": self.epochs,
            "unfenced_epochs": self.unfenced_epochs,
            "confidence": self.confidence,
            "invariant": self.invariant,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MechanismEvidence":
        return cls(
            mechanism=payload["mechanism"],
            block_ranges=tuple(tuple(pair) for pair in payload.get("block_ranges", [])),
            fence_edges=tuple(payload.get("fence_edges", [])),
            epochs=int(payload.get("epochs", 0)),
            unfenced_epochs=int(payload.get("unfenced_epochs", 0)),
            confidence=float(payload.get("confidence", 0.0)),
            invariant=payload.get("invariant", ""),
        )


@dataclass(frozen=True)
class AuditCheck:
    """One contract check the auditor ran against one mechanism claim."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed, "detail": self.detail}

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditCheck":
        return cls(
            name=payload.get("name", ""),
            passed=bool(payload.get("passed", False)),
            detail=payload.get("detail", ""),
        )


@dataclass(frozen=True)
class AuditVerdict:
    """The contract auditor's verdict on one mechanism's claims.

    A failed verdict demotes the mechanism's evidence: its windows fall back
    to the exhaustive plan, so an unsound claim can only cost scenarios,
    never coverage.
    """

    mechanism: str
    ok: bool
    checks: Tuple[AuditCheck, ...]

    def failed_checks(self) -> Tuple[AuditCheck, ...]:
        return tuple(check for check in self.checks if not check.passed)

    def to_dict(self) -> dict:
        return {
            "mechanism": self.mechanism,
            "ok": self.ok,
            "checks": [check.to_dict() for check in self.checks],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AuditVerdict":
        return cls(
            mechanism=payload.get("mechanism", ""),
            ok=bool(payload.get("ok", False)),
            checks=tuple(AuditCheck.from_dict(c) for c in payload.get("checks", [])),
        )


#: schema version of :meth:`MechanismReport.to_dict` payloads.  Version 2
#: added the LSW / replicated-metadata families, audit verdicts, and demoted
#: evidence.
REPORT_SCHEMA = 2


@dataclass(frozen=True)
class MechanismReport:
    """Typed result of a static pass over one recorded write stream."""

    fs_name: str
    total_requests: int
    write_requests: int
    checkpoints: int
    evidence: Tuple[MechanismEvidence, ...]
    #: in-flight writes at persistence points not attributed to any mechanism
    #: (the planner must fall back to exhaustive enumeration for those)
    unattributed_window_writes: int
    #: contract-auditor verdicts, one per originally-claimed mechanism
    #: (empty when the report has not been audited)
    audit_verdicts: Tuple[AuditVerdict, ...] = ()
    #: evidence whose claims the auditor rejected; kept for the record but
    #: invisible to the planner, whose windows fall back to exhaustive
    demoted_evidence: Tuple[MechanismEvidence, ...] = ()

    @property
    def mechanisms(self) -> Tuple[str, ...]:
        return tuple(e.mechanism for e in self.evidence)

    @property
    def has_mechanisms(self) -> bool:
        return bool(self.evidence)

    @property
    def audited(self) -> bool:
        return bool(self.audit_verdicts)

    @property
    def demotions(self) -> int:
        return len(self.demoted_evidence)

    def evidence_for(self, mechanism: str) -> Optional[MechanismEvidence]:
        for entry in self.evidence:
            if entry.mechanism == mechanism:
                return entry
        return None

    def demoted_for(self, mechanism: str) -> Optional[MechanismEvidence]:
        for entry in self.demoted_evidence:
            if entry.mechanism == mechanism:
                return entry
        return None

    def verdict_for(self, mechanism: str) -> Optional[AuditVerdict]:
        for verdict in self.audit_verdicts:
            if verdict.mechanism == mechanism:
                return verdict
        return None

    def to_dict(self) -> dict:
        return {
            "schema": REPORT_SCHEMA,
            "fs_name": self.fs_name,
            "total_requests": self.total_requests,
            "write_requests": self.write_requests,
            "checkpoints": self.checkpoints,
            "evidence": [e.to_dict() for e in self.evidence],
            "unattributed_window_writes": self.unattributed_window_writes,
            "audit_verdicts": [v.to_dict() for v in self.audit_verdicts],
            "demoted_evidence": [e.to_dict() for e in self.demoted_evidence],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MechanismReport":
        return cls(
            fs_name=payload.get("fs_name", ""),
            total_requests=int(payload.get("total_requests", 0)),
            write_requests=int(payload.get("write_requests", 0)),
            checkpoints=int(payload.get("checkpoints", 0)),
            evidence=tuple(
                MechanismEvidence.from_dict(e) for e in payload.get("evidence", [])
            ),
            unattributed_window_writes=int(payload.get("unattributed_window_writes", 0)),
            audit_verdicts=tuple(
                AuditVerdict.from_dict(v) for v in payload.get("audit_verdicts", [])
            ),
            demoted_evidence=tuple(
                MechanismEvidence.from_dict(e) for e in payload.get("demoted_evidence", [])
            ),
        )

    def summary(self) -> str:
        """Human-readable report (the ``analyze`` subcommand's output)."""
        lines = [
            f"mechanism report — {self.fs_name or 'unknown fs'}: "
            f"{self.total_requests} recorded requests "
            f"({self.write_requests} writes, {self.checkpoints} persistence points)",
        ]
        if not self.evidence and not self.demoted_evidence:
            lines.append(
                "  no persistence mechanism inferred — the mechanism planner "
                "falls back to exhaustive enumeration"
            )
        for entry in self.evidence:
            ranges = ", ".join(f"{a}..{b}" for a, b in entry.block_ranges)
            lines.append(
                f"  {entry.mechanism}: {entry.epochs} epoch(s), "
                f"{entry.unfenced_epochs} unfenced, blocks [{ranges}], "
                f"confidence {entry.confidence:.2f}"
            )
            lines.append(f"    invariant: {entry.invariant}")
        for verdict in self.audit_verdicts:
            if verdict.ok:
                lines.append(f"  audit {verdict.mechanism}: ok "
                             f"({len(verdict.checks)} checks passed)")
            else:
                failed = "; ".join(
                    f"{check.name}: {check.detail}" for check in verdict.failed_checks()
                )
                lines.append(
                    f"  audit {verdict.mechanism}: DEMOTED to exhaustive — {failed}"
                )
        if self.unattributed_window_writes:
            lines.append(
                f"  {self.unattributed_window_writes} in-flight write(s) at "
                "persistence points are unattributed: those checkpoints keep "
                "the exhaustive plan"
            )
        return "\n".join(lines)


_JOURNAL_INVARIANT = (
    "log entries persist in append order and recovery stops at the first "
    "missing or foreign block, so a crash can only lose a suffix of "
    "committed entries — one representative state per entry boundary"
)
_CHECKPOINT_INVARIANT = (
    "a FUA superblock commits generation g in one area only after that "
    "area's chunks are durable; a dropped chunk is detected by its header "
    "and recovery falls back to generation g-1, while a sector-torn chunk "
    "passes the header check and fails reassembly (unmountable)"
)


# ----------------------------------------------------------------------- cursor


def _make_lsw_reasoner():
    # Imported lazily: reasoners.py imports the evidence types from this
    # module, so a top-level import here would be circular.
    from .reasoners import LogStructuredWriteReasoner
    return LogStructuredWriteReasoner()


def _make_replica_reasoner():
    from .reasoners import ReplicatedMetadataReasoner
    return ReplicatedMetadataReasoner()


#: cursor fields that hold mutable/nested state and therefore need explicit
#: handling in :meth:`AnalysisCursor.copy`, ``to_dict`` and ``from_dict``
_CURSOR_NESTED_FIELDS = ("fence_edges", "lsw", "replicas")


@dataclass
class AnalysisCursor:
    """Incremental mechanism inference, fed one recorded request at a time.

    Copyable: the shared replay trie snapshots the cursor at flush and
    checkpoint barriers so sibling workloads resume the analysis on their
    shared stream prefix instead of re-parsing it.
    """

    total_requests: int = 0
    write_requests: int = 0
    checkpoints: int = 0

    # journal-commit reasoner state
    journal_writes: int = 0
    journal_entries: int = 0        #: envelope headers with index == 0
    journal_malformed: int = 0      #: log-area writes whose envelope broke
    journal_fenced_epochs: int = 0
    journal_unfenced_epochs: int = 0
    journal_block_min: Optional[int] = None
    journal_block_max: Optional[int] = None
    _journal_in_flight: int = 0     #: journal writes since the last fence

    # checkpoint-generation reasoner state
    checkpoint_writes: int = 0
    superblock_commits: int = 0
    generation_breaks: int = 0      #: superblock sequence not +1/ping-pong
    checkpoint_fenced_epochs: int = 0
    checkpoint_unfenced_epochs: int = 0
    checkpoint_block_min: Optional[int] = None
    checkpoint_block_max: Optional[int] = None
    _checkpoint_in_flight: int = 0  #: checkpoint-chunk writes since last fence
    _last_generation: Optional[int] = None
    _last_area: Optional[str] = None

    #: in-flight writes at persistence points attributed to no mechanism
    unattributed_window_writes: int = 0
    _data_in_flight: int = 0

    #: stream indices of observed fence edges (flushes / FUA commits), capped
    fence_edges: List[int] = field(default_factory=list)

    # per-family reasoners for the LSW and replicated-metadata mechanisms
    lsw: "LogStructuredWriteReasoner" = field(default_factory=_make_lsw_reasoner)  # noqa: F821
    replicas: "ReplicatedMetadataReasoner" = field(default_factory=_make_replica_reasoner)  # noqa: F821

    _FENCE_EDGE_CAP = 64

    def copy(self) -> "AnalysisCursor":
        twin = AnalysisCursor(**{
            name: value for name, value in self.__dict__.items()
            if name not in _CURSOR_NESTED_FIELDS
        })
        twin.fence_edges = list(self.fence_edges)
        twin.lsw = self.lsw.copy()
        twin.replicas = self.replicas.copy()
        return twin

    def to_dict(self) -> dict:
        """JSON-serializable snapshot; round-trips through :meth:`from_dict`."""
        payload = {
            name: value for name, value in self.__dict__.items()
            if name not in _CURSOR_NESTED_FIELDS
        }
        payload["fence_edges"] = list(self.fence_edges)
        payload["lsw"] = self.lsw.to_dict()
        payload["replicas"] = self.replicas.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "AnalysisCursor":
        from .reasoners import LogStructuredWriteReasoner, ReplicatedMetadataReasoner
        data = dict(payload)
        lsw = LogStructuredWriteReasoner.from_dict(data.pop("lsw", {}))
        replicas = ReplicatedMetadataReasoner.from_dict(data.pop("replicas", {}))
        data["fence_edges"] = list(data.get("fence_edges", []))
        cursor = cls(**data)
        cursor.lsw = lsw
        cursor.replicas = replicas
        return cursor

    # ------------------------------------------------------------------ feeding

    def feed(self, request: IORequest) -> None:
        """Consume the next recorded request, in stream order."""
        index = self.total_requests
        self.total_requests += 1
        if request.is_flush:
            self._fence(index)
            return
        if request.is_checkpoint:
            self.checkpoints += 1
            # A persistence point with mechanism writes still in flight is an
            # unfenced commit epoch — exactly what the planner prunes.
            if self._journal_in_flight:
                self.journal_unfenced_epochs += 1
                self._journal_in_flight = 0
            if self._checkpoint_in_flight:
                self.checkpoint_unfenced_epochs += 1
                self._checkpoint_in_flight = 0
            self.lsw.note_checkpoint()
            self.unattributed_window_writes += self._data_in_flight
            self._data_in_flight = 0
            return
        if not request.is_write:
            return
        self.write_requests += 1
        write_class, header = classify_write(request)
        if write_class not in (WriteClass.SEGMENT, WriteClass.SEGMENT_SUMMARY):
            # Any non-segment write closes an open record batch: the batch
            # was not sealed by a flush before other traffic followed it.
            # (The lazily-written summary is part of the segment protocol
            # and rides along without affecting the batch.)
            self.lsw.observe_other_write()
        if write_class == WriteClass.JOURNAL:
            self.journal_writes += 1
            self._journal_in_flight += 1
            if header is not None and header["index"] == 0:
                self.journal_entries += 1
            self._track_journal_block(request.block)
        elif write_class == WriteClass.CHECKPOINT:
            self.checkpoint_writes += 1
            self._checkpoint_in_flight += 1
            self._track_checkpoint_block(request.block)
        elif write_class == WriteClass.SEGMENT:
            self.lsw.observe_segment(index, header, request.block)
        elif write_class == WriteClass.SEGMENT_SUMMARY:
            self.lsw.observe_summary(request.block)
        elif write_class == WriteClass.REPLICA:
            self.replicas.observe_replica(header)
            if request.is_fua:
                self._note_fence_edge(index)
        elif write_class == WriteClass.SUPERBLOCK:
            self.superblock_commits += 1
            self._observe_superblock(header)
            self.replicas.observe_primary(index, header, bool(request.is_fua))
            # A committed superblock names a new generation: the segment
            # area resets with it, so the lsn era restarts.
            self.lsw.note_area_reset()
            if request.is_fua:
                # The FUA superblock is itself a fence edge for its own block
                # (it is durable on completion), but it does *not* fence the
                # checkpoint chunks before it — only a flush does that.
                self._note_fence_edge(index)
        else:
            block = request.block or 0
            if layout.LOG_START <= block < layout.SEGMENT_START:
                # A log-area write whose envelope did not parse: the journal
                # structure is broken, not merely absent.
                self.journal_malformed += 1
            elif layout.SEGMENT_START <= block < layout.REPLICA_SUPERBLOCK_BLOCK:
                self.lsw.observe_malformed()
            self._data_in_flight += 1

    def feed_all(self, requests: Iterable[IORequest]) -> "AnalysisCursor":
        for request in requests:
            self.feed(request)
        return self

    def _fence(self, index: int) -> None:
        self._note_fence_edge(index)
        self.lsw.note_fence(index)
        if self._journal_in_flight:
            self.journal_fenced_epochs += 1
            self._journal_in_flight = 0
        if self._checkpoint_in_flight:
            self.checkpoint_fenced_epochs += 1
            self._checkpoint_in_flight = 0
        self._data_in_flight = 0

    def _note_fence_edge(self, index: int) -> None:
        if len(self.fence_edges) < self._FENCE_EDGE_CAP:
            self.fence_edges.append(index)

    def _track_journal_block(self, block: int) -> None:
        if self.journal_block_min is None or block < self.journal_block_min:
            self.journal_block_min = block
        if self.journal_block_max is None or block > self.journal_block_max:
            self.journal_block_max = block

    def _track_checkpoint_block(self, block: int) -> None:
        if self.checkpoint_block_min is None or block < self.checkpoint_block_min:
            self.checkpoint_block_min = block
        if self.checkpoint_block_max is None or block > self.checkpoint_block_max:
            self.checkpoint_block_max = block

    def _observe_superblock(self, payload: Optional[dict]) -> None:
        if payload is None:
            return
        generation = payload.get("generation")
        area = payload.get("checkpoint_area")
        if self._last_generation is not None and generation is not None:
            # Shadow-header ping-pong: the generation advances by one and the
            # area alternates.  A repeated commit of the *same* generation is
            # the mount-time dirty-superblock rewrite, not a break.
            if generation > self._last_generation and not (
                generation == self._last_generation + 1 and area != self._last_area
            ):
                self.generation_breaks += 1
        if generation is not None:
            self._last_generation = generation
            self._last_area = area

    # ------------------------------------------------------------------ report

    def finish(self, fs_name: str = "") -> MechanismReport:
        """Build the report from everything fed so far (cursor stays usable)."""
        evidence: List[MechanismEvidence] = []
        if self.journal_entries:
            parsed = self.journal_writes
            broken = self.journal_malformed
            confidence = parsed / (parsed + broken) if parsed + broken else 0.0
            evidence.append(MechanismEvidence(
                mechanism="journal-commit",
                block_ranges=((self.journal_block_min, self.journal_block_max),),
                fence_edges=tuple(self.fence_edges),
                epochs=self.journal_fenced_epochs + self.journal_unfenced_epochs,
                unfenced_epochs=self.journal_unfenced_epochs,
                confidence=confidence,
                invariant=_JOURNAL_INVARIANT,
            ))
        if self.superblock_commits and self.checkpoint_writes:
            breaks = self.generation_breaks
            confidence = (
                (self.superblock_commits - breaks) / self.superblock_commits
                if self.superblock_commits else 0.0
            )
            block_ranges: List[Tuple[int, int]] = [
                (self.checkpoint_block_min, self.checkpoint_block_max),
                (layout.SUPERBLOCK_BLOCK, layout.SUPERBLOCK_BLOCK),
            ]
            evidence.append(MechanismEvidence(
                mechanism="checkpoint-generation",
                block_ranges=tuple(block_ranges),
                fence_edges=tuple(self.fence_edges),
                epochs=self.checkpoint_fenced_epochs + self.checkpoint_unfenced_epochs,
                unfenced_epochs=self.checkpoint_unfenced_epochs,
                confidence=confidence,
                invariant=_CHECKPOINT_INVARIANT,
            ))
        for reasoner in (self.lsw, self.replicas):
            family_evidence = reasoner.finish()
            if family_evidence is not None:
                evidence.append(family_evidence)
        return MechanismReport(
            fs_name=fs_name,
            total_requests=self.total_requests,
            write_requests=self.write_requests,
            checkpoints=self.checkpoints,
            evidence=tuple(evidence),
            unattributed_window_writes=self.unattributed_window_writes,
        )


def analyze_io_log(io_log: Sequence[IORequest], fs_name: str = "") -> MechanismReport:
    """One-shot static analysis of a full recorded stream."""
    return AnalysisCursor().feed_all(io_log).finish(fs_name)
