"""Cross-mechanism contract auditor.

The per-family reasoners claim *optimistically* (an unsealed record batch
still claims a sealing fence; a mirror is trusted after one observed pair).
Soundness therefore cannot rest on the reasoners alone: before the
:class:`~repro.crashmonkey.crashplan.MechanismPlanner` consumes a
:class:`~repro.analysis.mechanisms.MechanismReport`, this module re-checks
every claim in it against the recorded stream itself and *demotes* evidence
whose claims do not hold.  Demoted evidence moves to
``report.demoted_evidence``; the planner turns the windows that depended on
it into exhaustive (verbatim torn-write) windows, so a wrong claim costs
scenarios, never bugs.

Four checks per evidence, all recomputed from the raw stream:

* ``fence-edges-exist`` — every claimed fence edge is an actual fence in the
  stream (a flush request or an FUA write completion).  A reasoner that
  claimed a plain write index as its sealing fence fails here.
* ``block-ranges`` — the block ranges claimed by distinct mechanisms are
  pairwise disjoint, except for ranges that are *identical* and explicitly
  shared (the superblock pair, which both the checkpoint-generation and the
  replicated-metadata families legitimately cover).
* ``epochs-monotonic`` — the family's sequence tag really was monotonic
  (journal/segment sequence numbers strictly increasing within an era,
  superblock and replica generations never stepping backwards), and the
  claimed epoch count matches the recomputed one.
* ``confidence-calibration`` — the claimed confidence does not exceed the
  attribution coverage recomputed from the stream (how many of the family's
  writes actually parsed, how many replica transitions actually paired).

The auditor never *adds* evidence and never raises a confidence: it can only
keep a claim or demote it, which keeps the audited report a conservative
refinement of the reasoners' output.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Set, Tuple

from .mechanisms import (
    AnalysisCursor,
    AuditCheck,
    AuditVerdict,
    MechanismEvidence,
    MechanismReport,
)

#: identical block ranges that more than one mechanism may legitimately
#: claim: the primary superblock (named by both the checkpoint-generation
#: and the replicated-metadata families) and its replica.
_SHARED_RANGES: Set[Tuple[int, int]] = set()


def _init_shared_ranges() -> None:
    from ..fs import layout

    _SHARED_RANGES.add((layout.SUPERBLOCK_BLOCK, layout.SUPERBLOCK_BLOCK))
    _SHARED_RANGES.add(
        (layout.REPLICA_SUPERBLOCK_BLOCK, layout.REPLICA_SUPERBLOCK_BLOCK)
    )


_init_shared_ranges()

#: slack on the confidence comparison so float formatting never demotes
_CONFIDENCE_SLACK = 0.01


def actual_fence_edges(io_log: Sequence) -> Set[int]:
    """The stream's real fence edges: flush requests and FUA writes.

    Indices match the analysis cursor's numbering (position in the stream).
    """
    fences: Set[int] = set()
    for index, request in enumerate(io_log):
        if request.is_flush:
            fences.add(index)
        elif request.is_write and request.is_fua:
            fences.add(index)
    return fences


def _ranges_overlap(a: Tuple[int, int], b: Tuple[int, int]) -> bool:
    (a_lo, a_hi), (b_lo, b_hi) = a, b
    return a_lo <= b_hi and b_lo <= a_hi


def _recomputed_coverage(mechanism: str, cursor: AnalysisCursor) -> float:
    """Attribution coverage for ``mechanism`` recomputed from the stream."""
    if mechanism == "journal-commit":
        parsed, broken = cursor.journal_writes, cursor.journal_malformed
        return parsed / (parsed + broken) if parsed + broken else 0.0
    if mechanism == "checkpoint-generation":
        commits = cursor.superblock_commits
        return (commits - cursor.generation_breaks) / commits if commits else 0.0
    if mechanism == "log-structured-write":
        lsw = cursor.lsw
        total = lsw.writes + lsw.malformed
        return lsw.writes / total if total else 0.0
    if mechanism == "replicated-metadata":
        replicas = cursor.replicas
        if not replicas.transitions:
            return 1.0 if replicas.replica_writes else 0.0
        return replicas.paired_transitions / replicas.transitions
    return 0.0


def _monotonic_breaks(mechanism: str, cursor: AnalysisCursor) -> int:
    """Sequence-tag breaks for ``mechanism`` recomputed from the stream."""
    if mechanism == "journal-commit":
        return cursor.journal_malformed
    if mechanism == "checkpoint-generation":
        return cursor.generation_breaks
    if mechanism == "log-structured-write":
        return cursor.lsw.monotonic_breaks
    if mechanism == "replicated-metadata":
        # Generations are tracked newest-wins; a replica ahead of its primary
        # would have registered as an unpaired transition instead, so the
        # break signal here is a primary generation that stepped backwards —
        # which _observe-style tracking folds into generation_breaks.
        return cursor.generation_breaks
    return 0


def _recomputed_epochs(mechanism: str, cursor: AnalysisCursor) -> int:
    if mechanism == "journal-commit":
        return cursor.journal_fenced_epochs + cursor.journal_unfenced_epochs
    if mechanism == "checkpoint-generation":
        return cursor.checkpoint_fenced_epochs + cursor.checkpoint_unfenced_epochs
    if mechanism == "log-structured-write":
        return cursor.lsw.fenced_epochs + cursor.lsw.unfenced_epochs
    if mechanism == "replicated-metadata":
        return cursor.replicas.transitions
    return 0


def _audit_evidence(
    evidence: MechanismEvidence,
    others: Sequence[MechanismEvidence],
    fences: Set[int],
    cursor: AnalysisCursor,
) -> AuditVerdict:
    checks: List[AuditCheck] = []

    # 1. Every claimed fence edge must be a real one.
    bogus = sorted(set(evidence.fence_edges) - fences)
    checks.append(AuditCheck(
        name="fence-edges-exist",
        passed=not bogus,
        detail=(
            "all %d claimed fence edges are real" % len(evidence.fence_edges)
            if not bogus else
            "claimed fence edges %s are plain writes, not fences"
            % (bogus[:4],)
        ),
    ))

    # 2. Block ranges disjoint from every other mechanism's, unless the
    #    overlapping ranges are identical and explicitly shared.
    conflicts: List[str] = []
    for other in others:
        for mine in evidence.block_ranges:
            for theirs in other.block_ranges:
                if not _ranges_overlap(mine, theirs):
                    continue
                if mine == theirs and mine in _SHARED_RANGES:
                    continue
                conflicts.append(
                    "%s vs %s of %s" % (mine, theirs, other.mechanism)
                )
    checks.append(AuditCheck(
        name="block-ranges",
        passed=not conflicts,
        detail=(
            "ranges disjoint (shared superblock pair exempt)"
            if not conflicts else
            "overlapping claims: " + "; ".join(conflicts[:3])
        ),
    ))

    # 3. The family's sequence tag really was monotonic, and the claimed
    #    epoch count is the one the stream supports.
    breaks = _monotonic_breaks(evidence.mechanism, cursor)
    expected_epochs = _recomputed_epochs(evidence.mechanism, cursor)
    monotonic_ok = breaks == 0 and evidence.epochs == expected_epochs
    checks.append(AuditCheck(
        name="epochs-monotonic",
        passed=monotonic_ok,
        detail=(
            "%d epochs, sequence tags monotonic" % evidence.epochs
            if monotonic_ok else
            "%d sequence breaks, claimed %d epochs vs %d recomputed"
            % (breaks, evidence.epochs, expected_epochs)
        ),
    ))

    # 4. Confidence no higher than the recomputed attribution coverage.
    coverage = _recomputed_coverage(evidence.mechanism, cursor)
    calibrated = evidence.confidence <= coverage + _CONFIDENCE_SLACK
    checks.append(AuditCheck(
        name="confidence-calibration",
        passed=calibrated,
        detail=(
            "confidence %.2f within coverage %.2f" % (evidence.confidence, coverage)
            if calibrated else
            "confidence %.2f exceeds recomputed coverage %.2f"
            % (evidence.confidence, coverage)
        ),
    ))

    return AuditVerdict(
        mechanism=evidence.mechanism,
        ok=all(check.passed for check in checks),
        checks=tuple(checks),
    )


def audit_report(report: MechanismReport, io_log: Sequence) -> MechanismReport:
    """Second static pass: check every claim, demote violated evidence.

    Returns a new report whose ``evidence`` holds only the claims that
    survived all four checks; the rest move to ``demoted_evidence`` with a
    failed :class:`AuditVerdict` explaining why.  Auditing an already-audited
    report is a no-op refinement (verdicts are recomputed, surviving
    evidence can only shrink).
    """
    if not report.evidence:
        return dataclasses.replace(report, audit_verdicts=(), demoted_evidence=report.demoted_evidence)
    fences = actual_fence_edges(io_log)
    cursor = AnalysisCursor().feed_all(io_log)
    verdicts: List[AuditVerdict] = []
    kept: List[MechanismEvidence] = []
    demoted: List[MechanismEvidence] = list(report.demoted_evidence)
    for evidence in report.evidence:
        others = [e for e in report.evidence if e is not evidence]
        verdict = _audit_evidence(evidence, others, fences, cursor)
        verdicts.append(verdict)
        if verdict.ok:
            kept.append(evidence)
        else:
            demoted.append(evidence)
    return dataclasses.replace(
        report,
        evidence=tuple(kept),
        audit_verdicts=tuple(verdicts),
        demoted_evidence=tuple(demoted),
    )
