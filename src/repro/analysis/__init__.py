"""Static analysis of recorded write streams.

The analysis layer consumes a recorded ``io_log`` — no execution, no crash
states — and infers the *persistence mechanisms* the traced file system used:
journal commit protocols (a commit record persist-fencing a preceding group
of writes), checkpoint-generation shadow headers (A/B area ping-pong named
by a FUA superblock), log-structured segment appends under a monotonic
sequence tag, and N-way replicated metadata recovered newest-wins.  The
inferred :class:`MechanismReport` feeds the ``mechanism`` crash planner,
which collapses the drop/tear cross-product to a few representative states
per mechanism epoch, and the ``analyze`` CLI subcommand, which prints the
report without running any crash state.

A second pass — the cross-mechanism contract auditor in
:mod:`repro.analysis.audit` — re-checks every claim in the report against
the stream's actual fence/FUA edges and demotes violated claims, so the
planner falls back to exhaustive windows wherever a reasoner over-claimed.
"""

from .audit import actual_fence_edges, audit_report
from .mechanisms import (
    REPORT_SCHEMA,
    AnalysisCursor,
    AuditCheck,
    AuditVerdict,
    MechanismEvidence,
    MechanismReport,
    WriteClass,
    analyze_io_log,
    classify_write,
)
from .reasoners import LogStructuredWriteReasoner, ReplicatedMetadataReasoner

__all__ = [
    "REPORT_SCHEMA",
    "AnalysisCursor",
    "AuditCheck",
    "AuditVerdict",
    "LogStructuredWriteReasoner",
    "MechanismEvidence",
    "MechanismReport",
    "ReplicatedMetadataReasoner",
    "WriteClass",
    "actual_fence_edges",
    "analyze_io_log",
    "audit_report",
    "classify_write",
]
