"""Static analysis of recorded write streams.

The analysis layer consumes a recorded ``io_log`` — no execution, no crash
states — and infers the *persistence mechanisms* the traced file system used:
journal commit protocols (a commit record persist-fencing a preceding group
of writes) and checkpoint-generation shadow headers (A/B area ping-pong named
by a FUA superblock).  The inferred :class:`MechanismReport` feeds the
``mechanism`` crash planner, which collapses the drop/tear cross-product to a
few representative states per mechanism epoch, and the ``analyze`` CLI
subcommand, which prints the report without running any crash state.
"""

from .mechanisms import (
    AnalysisCursor,
    MechanismEvidence,
    MechanismReport,
    WriteClass,
    analyze_io_log,
    classify_write,
)

__all__ = [
    "AnalysisCursor",
    "MechanismEvidence",
    "MechanismReport",
    "WriteClass",
    "analyze_io_log",
    "classify_write",
]
