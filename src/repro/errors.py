"""Shared exception hierarchy for the B3 reproduction.

The hierarchy intentionally mirrors the failure classes that the paper's
tools observe: file-system level errors (POSIX-ish errno-style failures),
crash/recovery failures (a crash state that cannot be mounted), and
harness-level misuse errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the ``repro`` package."""


class StorageError(ReproError):
    """Errors raised by the block-device substrate."""


class OutOfSpaceError(StorageError):
    """The block device has no free blocks left for an allocation."""


class InvalidBlockError(StorageError):
    """A read or write addressed a block outside the device."""


class FileSystemError(ReproError):
    """Base class for POSIX-style errors raised by the simulated file systems.

    Each subclass carries an ``errno_name`` so tests and the harness can
    reason about the failure class without string matching.
    """

    errno_name = "EIO"


class FsNotMountedError(FileSystemError):
    errno_name = "ENODEV"


class FsExistsError(FileSystemError):
    errno_name = "EEXIST"


class FsNoEntryError(FileSystemError):
    errno_name = "ENOENT"


class FsNotADirectoryError(FileSystemError):
    errno_name = "ENOTDIR"


class FsIsADirectoryError(FileSystemError):
    errno_name = "EISDIR"


class FsNotEmptyError(FileSystemError):
    errno_name = "ENOTEMPTY"


class FsInvalidArgumentError(FileSystemError):
    errno_name = "EINVAL"


class FsReadOnlyError(FileSystemError):
    errno_name = "EROFS"


class FsNoSpaceError(FileSystemError):
    errno_name = "ENOSPC"


class UnmountableError(ReproError):
    """Raised when a crash state cannot be mounted (recovery failed).

    This corresponds to the paper's most severe consequence class: the file
    system is unavailable after the crash until repaired with fsck.
    """

    def __init__(self, message: str, *, fs_type: str = "", detail: str = ""):
        super().__init__(message)
        self.fs_type = fs_type
        self.detail = detail


class RecoveryError(UnmountableError):
    """Log or journal replay failed while mounting a crash state."""


class CorruptionError(UnmountableError):
    """On-disk structures failed validation while mounting."""


class HarnessError(ReproError):
    """CrashMonkey / ACE harness misuse (e.g. replaying before recording)."""


class WorkloadError(ReproError):
    """A workload is malformed or cannot be executed."""
