"""Workload executor.

Maps workload operations onto the simulated file-system API.  This is the
equivalent of the C++ test program ACE's adapter generates for CrashMonkey:
it performs each operation and gives the harness a hook right after every
persistence operation (where CrashMonkey inserts its checkpoint request).

The executor synthesizes deterministic data payloads for write operations so
that file contents are distinguishable (and content comparisons meaningful)
without the workload having to carry literal bytes around.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import FileSystemError, WorkloadError
from .operations import Operation, OpKind
from .workload import Workload

#: Callback invoked right after a persistence operation completes.
#: Receives the operation and its index within the workload.
PersistenceCallback = Callable[[Operation, int], None]
#: Callback invoked right before any operation executes.
OperationCallback = Callable[[Operation, int], None]


def payload_for(op_index: int, length: int) -> bytes:
    """Deterministic, operation-specific data for write operations."""
    if length <= 0:
        return b""
    pattern = bytes((b + op_index * 7) % 251 + 1 for b in range(min(length, 256)))
    repeats = length // len(pattern) + 1
    return (pattern * repeats)[:length]


class WorkloadExecutor:
    """Executes workloads against a mounted simulated file system."""

    def __init__(self, fs, *, strict: bool = False):
        """
        Args:
            fs: a mounted file system instance (any ``AbstractFileSystem``).
            strict: if True, file-system errors abort execution; if False
                (the default, matching CrashMonkey's behaviour for generated
                workloads) an operation that fails with a POSIX-style error is
                skipped and counted.
        """
        self.fs = fs
        self.strict = strict
        self.executed = 0
        self.skipped = 0
        self.persistence_count = 0

    # -- single operations --------------------------------------------------------

    def run_operation(self, op: Operation, index: int = 0) -> bool:
        """Execute one operation.  Returns True if it ran, False if skipped."""
        try:
            self._dispatch(op, index)
        except FileSystemError:
            if self.strict:
                raise
            self.skipped += 1
            return False
        self.executed += 1
        return True

    def _dispatch(self, op: Operation, index: int) -> None:
        fs = self.fs
        kwargs = op.kwargs_dict
        name = op.op
        args = op.args

        if name == OpKind.CREAT:
            fs.creat(args[0])
        elif name == OpKind.MKDIR:
            fs.mkdir(args[0], parents=True)
        elif name == OpKind.WRITE:
            fs.write(args[0], int(args[1]), payload_for(index, int(args[2])))
        elif name == OpKind.DWRITE:
            fs.dwrite(args[0], int(args[1]), payload_for(index, int(args[2])))
        elif name == OpKind.MWRITE:
            self._mmap_write(args[0], int(args[1]), int(args[2]), index)
        elif name == OpKind.FALLOC:
            fs.falloc(args[0], int(args[1]), int(args[2]), keep_size=bool(kwargs.get("keep_size", False)))
        elif name == OpKind.FZERO:
            fs.fzero(args[0], int(args[1]), int(args[2]), keep_size=bool(kwargs.get("keep_size", False)))
        elif name == OpKind.FPUNCH:
            fs.fpunch(args[0], int(args[1]), int(args[2]))
        elif name == OpKind.LINK:
            fs.link(args[0], args[1])
        elif name == OpKind.SYMLINK:
            fs.symlink(args[0], args[1])
        elif name == OpKind.UNLINK:
            fs.unlink(args[0])
        elif name == OpKind.RMDIR:
            fs.rmdir(args[0])
        elif name == OpKind.REMOVE:
            fs.remove(args[0])
        elif name == OpKind.RENAME:
            fs.rename(args[0], args[1])
        elif name == OpKind.TRUNCATE:
            fs.truncate(args[0], int(args[1]))
        elif name == OpKind.SETXATTR:
            value = args[2] if len(args) > 2 else "value1"
            fs.setxattr(args[0], args[1], value.encode("utf-8"))
        elif name == OpKind.REMOVEXATTR:
            fs.removexattr(args[0], args[1])
        elif name == OpKind.DROPCACHES:
            pass  # the page cache is the in-memory state itself; nothing to drop safely
        elif name == OpKind.FSYNC:
            fs.fsync(args[0])
        elif name == OpKind.FDATASYNC:
            fs.fdatasync(args[0])
        elif name == OpKind.MSYNC:
            if len(args) >= 3:
                fs.msync(args[0], int(args[1]), int(args[2]))
            else:
                fs.msync(args[0])
        elif name == OpKind.SYNC:
            fs.sync()
        else:
            raise WorkloadError(f"executor does not understand operation {name!r}")

    def _mmap_write(self, path: str, offset: int, length: int, index: int) -> None:
        """mmap writes require the mapped range to exist; extend the file first."""
        fs = self.fs
        if not fs.exists(path):
            fs.creat(path)
        state = fs.stat(path)
        end = offset + length
        if state.size < end:
            fs.truncate(path, end)
        fs.mwrite(path, offset, payload_for(index, length))

    # -- whole workloads -------------------------------------------------------------

    def run(self, workload: Workload,
            on_persistence: Optional[PersistenceCallback] = None,
            before_operation: Optional[OperationCallback] = None,
            after_operation: Optional[OperationCallback] = None,
            start_index: int = 0) -> None:
        """Execute a workload, invoking ``on_persistence`` after each persistence op.

        ``start_index`` skips the first operations (the prefix-shared
        recorder resumes mid-workload from a cached snapshot — operation
        indices stay absolute so payloads and callbacks are identical to a
        full run).  ``after_operation`` fires after each operation completes,
        after any ``on_persistence`` for it.  Both recording paths go through
        this one loop, so the executor's protocol (callback ordering, skip
        and persistence accounting) cannot diverge between them.
        """
        for index, op in enumerate(workload.ops[start_index:], start=start_index):
            if before_operation is not None:
                before_operation(op, index)
            ran = self.run_operation(op, index)
            if ran and op.is_persistence:
                self.persistence_count += 1
                if on_persistence is not None:
                    on_persistence(op, index)
            if after_operation is not None:
                after_operation(op, index)
