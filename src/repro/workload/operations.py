"""Workload operations.

A workload is a sequence of file-system operations (paper §4/§5.2).  This
module defines the operation vocabulary: the fourteen core operations ACE
supports (Table 4), the persistence operations that create crash points, and
a few auxiliary operations used by the known-bug workloads from the appendix
(symlink, punch hole, zero range, dropcaches).

Operations are plain data (name + arguments); the executor in
:mod:`repro.workload.executor` maps them onto the simulated file-system API.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple


class OpKind:
    """Operation names.  Matches the paper's terminology where possible."""

    CREAT = "creat"
    MKDIR = "mkdir"
    FALLOC = "falloc"
    WRITE = "write"            # buffered write
    DWRITE = "dwrite"          # direct-I/O write
    MWRITE = "mwrite"          # write through an mmap'ed region
    LINK = "link"
    SYMLINK = "symlink"
    UNLINK = "unlink"
    RMDIR = "rmdir"
    REMOVE = "remove"
    RENAME = "rename"
    TRUNCATE = "truncate"
    SETXATTR = "setxattr"
    REMOVEXATTR = "removexattr"
    FZERO = "fzero"            # fallocate(ZERO_RANGE)
    FPUNCH = "fpunch"          # fallocate(PUNCH_HOLE)
    DROPCACHES = "dropcaches"

    FSYNC = "fsync"
    FDATASYNC = "fdatasync"
    MSYNC = "msync"
    SYNC = "sync"

    #: The fourteen core operations ACE supports (paper §5.2).
    ACE_CORE = (
        CREAT, MKDIR, FALLOC, WRITE, MWRITE, LINK, DWRITE,
        UNLINK, RMDIR, SETXATTR, REMOVEXATTR, REMOVE, TRUNCATE, RENAME,
    )

    #: Persistence operations — the only points at which B3 simulates crashes.
    PERSISTENCE = (FSYNC, FDATASYNC, MSYNC, SYNC)

    #: Operations that take a data range (offset/length) as arguments.
    DATA_OPS = (WRITE, DWRITE, MWRITE, FALLOC, FZERO, FPUNCH)


#: Write-range flavours ACE distinguishes (paper §4.2 "Data operations").
class WriteRange:
    APPEND = "append"
    OVERLAP_START = "overlap_start"
    OVERLAP_MIDDLE = "overlap_middle"
    OVERLAP_END = "overlap_end"
    OVERLAP_EXTEND = "overlap_extend"

    ALL = (APPEND, OVERLAP_START, OVERLAP_MIDDLE, OVERLAP_END, OVERLAP_EXTEND)


@dataclass(frozen=True)
class Operation:
    """One operation in a workload.

    Attributes:
        op: the operation name (one of :class:`OpKind`'s constants).
        args: operation arguments (paths, offsets, lengths, flags).
        dependency: True if the operation was added by ACE's phase 4 to
            satisfy a dependency (it is then not part of the *core* sequence).
    """

    op: str
    args: Tuple = ()
    kwargs: Tuple = ()
    dependency: bool = False

    # -- convenience accessors -------------------------------------------------

    @property
    def is_persistence(self) -> bool:
        return self.op in OpKind.PERSISTENCE

    @property
    def kwargs_dict(self) -> Dict:
        return dict(self.kwargs)

    def as_dependency(self) -> "Operation":
        return replace(self, dependency=True)

    def to_json(self) -> dict:
        return {
            "op": self.op,
            "args": list(self.args),
            "kwargs": {key: value for key, value in self.kwargs},
            "dependency": self.dependency,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Operation":
        return cls(
            op=payload["op"],
            args=tuple(payload.get("args", ())),
            kwargs=tuple(sorted(payload.get("kwargs", {}).items())),
            dependency=bool(payload.get("dependency", False)),
        )

    def describe(self) -> str:
        """Figure-4 style one-line rendering, e.g. ``rename(A/foo, B/bar)``."""
        parts = [str(arg) for arg in self.args]
        parts.extend(f"{key}={value}" for key, value in self.kwargs)
        suffix = " [dep]" if self.dependency else ""
        return f"{self.op}({', '.join(parts)}){suffix}"

    def __str__(self) -> str:
        return self.describe()


# -- constructors -------------------------------------------------------------------
#
# These small helpers keep workload-construction code readable (both ACE's and
# the hand-encoded known-bug workloads from the appendix).


def creat(path: str, dependency: bool = False) -> Operation:
    return Operation(OpKind.CREAT, (path,), dependency=dependency)


def mkdir(path: str, dependency: bool = False) -> Operation:
    return Operation(OpKind.MKDIR, (path,), dependency=dependency)


def write(path: str, offset: int, length: int) -> Operation:
    return Operation(OpKind.WRITE, (path, offset, length))


def dwrite(path: str, offset: int, length: int) -> Operation:
    return Operation(OpKind.DWRITE, (path, offset, length))


def mwrite(path: str, offset: int, length: int) -> Operation:
    return Operation(OpKind.MWRITE, (path, offset, length))


def falloc(path: str, offset: int, length: int, keep_size: bool = False) -> Operation:
    return Operation(OpKind.FALLOC, (path, offset, length), (("keep_size", keep_size),))


def fzero(path: str, offset: int, length: int, keep_size: bool = False) -> Operation:
    return Operation(OpKind.FZERO, (path, offset, length), (("keep_size", keep_size),))


def fpunch(path: str, offset: int, length: int) -> Operation:
    return Operation(OpKind.FPUNCH, (path, offset, length))


def link(src: str, dst: str) -> Operation:
    return Operation(OpKind.LINK, (src, dst))


def symlink(target: str, path: str) -> Operation:
    return Operation(OpKind.SYMLINK, (target, path))


def unlink(path: str) -> Operation:
    return Operation(OpKind.UNLINK, (path,))


def rmdir(path: str) -> Operation:
    return Operation(OpKind.RMDIR, (path,))


def remove(path: str) -> Operation:
    return Operation(OpKind.REMOVE, (path,))


def rename(src: str, dst: str) -> Operation:
    return Operation(OpKind.RENAME, (src, dst))


def truncate(path: str, size: int) -> Operation:
    return Operation(OpKind.TRUNCATE, (path, size))


def setxattr(path: str, name: str = "user.attr1", value: str = "value1") -> Operation:
    return Operation(OpKind.SETXATTR, (path, name, value))


def removexattr(path: str, name: str = "user.attr1") -> Operation:
    return Operation(OpKind.REMOVEXATTR, (path, name))


def dropcaches() -> Operation:
    return Operation(OpKind.DROPCACHES, ())


def fsync(path: str) -> Operation:
    return Operation(OpKind.FSYNC, (path,))


def fdatasync(path: str) -> Operation:
    return Operation(OpKind.FDATASYNC, (path,))


def msync(path: str, offset: int = 0, length: Optional[int] = None) -> Operation:
    if length is None:
        return Operation(OpKind.MSYNC, (path,))
    return Operation(OpKind.MSYNC, (path, offset, length))


def sync() -> Operation:
    return Operation(OpKind.SYNC, ())
