"""High-level workload language.

ACE represents workloads "in a high-level language, similar to the one
depicted in Figure 4" before handing them to the CrashMonkey adapter.  This
module provides a textual form of that language — one operation per line,
``op arg1 arg2 ...`` — with a parser and a printer, so workloads can be stored
in files, diffed, and fed to the CLI.

Example::

    mkdir A
    creat A/foo
    write A/foo 0 4096
    fsync A/foo

Comments start with ``#``; a line consisting of ``crash`` is accepted (and
ignored) so appendix-style listings can be pasted directly.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import WorkloadError
from .operations import Operation, OpKind
from .workload import Workload

_BOOL_TRUE = {"1", "true", "yes", "keep", "keep_size", "-k"}
_BOOL_FALSE = {"0", "false", "no", "none", "nokeep", "no_keep_size"}


def _parse_bool(token: str, line_no: int = 0) -> bool:
    """Parse an explicit boolean token; typos must not silently mean False."""
    lowered = token.strip().lower()
    if lowered in _BOOL_TRUE:
        return True
    if lowered in _BOOL_FALSE:
        return False
    raise WorkloadError(
        f"line {line_no}: expected a boolean token "
        f"({'/'.join(sorted(_BOOL_TRUE))} or {'/'.join(sorted(_BOOL_FALSE))}), got {token!r}"
    )


def _parse_int(token: str, line_no: int) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise WorkloadError(f"line {line_no}: expected an integer, got {token!r}") from None


def parse_line(line: str, line_no: int = 0) -> Optional[Operation]:
    """Parse one line of the workload language into an :class:`Operation`."""
    stripped = line.split("#", 1)[0].strip()
    if not stripped:
        return None
    tokens = stripped.replace(",", " ").split()
    op = tokens[0].lower()
    args = tokens[1:]
    if op in ("crash", "---crash---", "--crash--"):
        return None

    if op in (OpKind.CREAT, "touch"):
        _require(args, 1, op, line_no)
        return Operation(OpKind.CREAT, (args[0],))
    if op == OpKind.MKDIR:
        _require(args, 1, op, line_no)
        return Operation(OpKind.MKDIR, (args[0],))
    if op in (OpKind.WRITE, "pwrite"):
        _require(args, 3, op, line_no)
        return Operation(OpKind.WRITE, (args[0], _parse_int(args[1], line_no), _parse_int(args[2], line_no)))
    if op in (OpKind.DWRITE, "d-write", "direct_write"):
        _require(args, 3, op, line_no)
        return Operation(OpKind.DWRITE, (args[0], _parse_int(args[1], line_no), _parse_int(args[2], line_no)))
    if op in (OpKind.MWRITE, "m-write", "mmapwrite"):
        _require(args, 3, op, line_no)
        return Operation(OpKind.MWRITE, (args[0], _parse_int(args[1], line_no), _parse_int(args[2], line_no)))
    if op in (OpKind.FALLOC, "fallocate"):
        _require(args, 3, op, line_no)
        keep = len(args) > 3 and _parse_bool(args[3], line_no)
        return Operation(
            OpKind.FALLOC,
            (args[0], _parse_int(args[1], line_no), _parse_int(args[2], line_no)),
            (("keep_size", keep),),
        )
    if op in (OpKind.FZERO, "zero_range"):
        _require(args, 3, op, line_no)
        keep = len(args) > 3 and _parse_bool(args[3], line_no)
        return Operation(
            OpKind.FZERO,
            (args[0], _parse_int(args[1], line_no), _parse_int(args[2], line_no)),
            (("keep_size", keep),),
        )
    if op in (OpKind.FPUNCH, "punch_hole"):
        _require(args, 3, op, line_no)
        return Operation(OpKind.FPUNCH, (args[0], _parse_int(args[1], line_no), _parse_int(args[2], line_no)))
    if op == OpKind.LINK:
        _require(args, 2, op, line_no)
        return Operation(OpKind.LINK, (args[0], args[1]))
    if op == OpKind.SYMLINK:
        _require(args, 2, op, line_no)
        return Operation(OpKind.SYMLINK, (args[0], args[1]))
    if op == OpKind.UNLINK:
        _require(args, 1, op, line_no)
        return Operation(OpKind.UNLINK, (args[0],))
    if op == OpKind.RMDIR:
        _require(args, 1, op, line_no)
        return Operation(OpKind.RMDIR, (args[0],))
    if op in (OpKind.REMOVE, "rm"):
        _require(args, 1, op, line_no)
        return Operation(OpKind.REMOVE, (args[0],))
    if op in (OpKind.RENAME, "mv"):
        _require(args, 2, op, line_no)
        return Operation(OpKind.RENAME, (args[0], args[1]))
    if op == OpKind.TRUNCATE:
        _require(args, 2, op, line_no)
        return Operation(OpKind.TRUNCATE, (args[0], _parse_int(args[1], line_no)))
    if op == OpKind.SETXATTR:
        _require(args, 1, op, line_no)
        name = args[1] if len(args) > 1 else "user.attr1"
        value = args[2] if len(args) > 2 else "value1"
        return Operation(OpKind.SETXATTR, (args[0], name, value))
    if op == OpKind.REMOVEXATTR:
        _require(args, 1, op, line_no)
        name = args[1] if len(args) > 1 else "user.attr1"
        return Operation(OpKind.REMOVEXATTR, (args[0], name))
    if op == OpKind.DROPCACHES:
        return Operation(OpKind.DROPCACHES, ())
    if op == OpKind.FSYNC:
        _require(args, 1, op, line_no)
        return Operation(OpKind.FSYNC, (args[0],))
    if op == OpKind.FDATASYNC:
        _require(args, 1, op, line_no)
        return Operation(OpKind.FDATASYNC, (args[0],))
    if op == OpKind.MSYNC:
        _require(args, 1, op, line_no)
        if len(args) >= 3:
            return Operation(OpKind.MSYNC, (args[0], _parse_int(args[1], line_no), _parse_int(args[2], line_no)))
        return Operation(OpKind.MSYNC, (args[0],))
    if op == OpKind.SYNC:
        return Operation(OpKind.SYNC, ())
    raise WorkloadError(f"line {line_no}: unknown operation {op!r}")


def _require(args: List[str], count: int, op: str, line_no: int) -> None:
    if len(args) < count:
        raise WorkloadError(
            f"line {line_no}: {op} needs at least {count} argument(s), got {len(args)}"
        )


def parse_workload(text: str, name: str = "", source: str = "language") -> Workload:
    """Parse a multi-line workload description."""
    ops = []
    for line_no, line in enumerate(text.splitlines(), start=1):
        op = parse_line(line, line_no)
        if op is not None:
            ops.append(op)
    if not ops:
        raise WorkloadError("workload text contains no operations")
    return Workload(ops=ops, name=name, source=source)


def format_workload(workload: Workload) -> str:
    """Render a workload back into the language (inverse of ``parse_workload``)."""
    lines = []
    for op in workload.ops:
        parts = [op.op]
        parts.extend(str(arg) for arg in op.args)
        for key, value in op.kwargs:
            if key == "keep_size" and value:
                parts.append("keep_size")
            elif key != "keep_size":
                parts.append(str(value))
        lines.append(" ".join(parts))
    return "\n".join(lines)
