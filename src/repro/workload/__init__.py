"""Workload representation: operations, containers, the text language, executor."""

from . import operations as ops
from .executor import WorkloadExecutor, payload_for
from .language import format_workload, parse_line, parse_workload
from .operations import Operation, OpKind, WriteRange
from .workload import Workload, make_workload

__all__ = [
    "ops",
    "Operation",
    "OpKind",
    "WriteRange",
    "Workload",
    "make_workload",
    "WorkloadExecutor",
    "payload_for",
    "parse_workload",
    "parse_line",
    "format_workload",
]
