"""Workload container.

A :class:`Workload` is an ordered list of operations plus bookkeeping that
the rest of the pipeline relies on:

* the *skeleton* — the sequence of core (non-dependency, non-persistence)
  operation names, used by the Figure-5 post-processing to group bug reports,
* persistence-point positions — the crash points CrashMonkey simulates,
* a stable identifier used to deduplicate and to name reports.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from .operations import Operation


@dataclass
class Workload:
    """An ordered sequence of file-system operations."""

    ops: List[Operation] = field(default_factory=list)
    name: str = ""
    #: Sequence length ACE aimed for (number of core operations), if known.
    seq_length: Optional[int] = None
    #: Free-form provenance label, e.g. "ace:seq-2" or "known-bug-5".
    source: str = ""

    # -- basic container behaviour ------------------------------------------------

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: Operation) -> None:
        self.ops.append(op)

    def extend(self, ops: Iterable[Operation]) -> None:
        self.ops.extend(ops)

    # -- derived views -------------------------------------------------------------

    def core_ops(self) -> List[Operation]:
        """Core operations: not persistence points and not dependency setup."""
        return [op for op in self.ops if not op.is_persistence and not op.dependency]

    def skeleton(self) -> Tuple[str, ...]:
        """The phase-1 skeleton: the ordered core operation names."""
        return tuple(op.op for op in self.core_ops())

    def persistence_points(self) -> List[int]:
        """Indices of persistence operations (in execution order)."""
        return [index for index, op in enumerate(self.ops) if op.is_persistence]

    def num_persistence_points(self) -> int:
        return len(self.persistence_points())

    def operations_used(self) -> Tuple[str, ...]:
        return tuple(sorted({op.op for op in self.core_ops()}))

    def ends_with_persistence(self) -> bool:
        return bool(self.ops) and self.ops[-1].is_persistence

    def paths_touched(self) -> Tuple[str, ...]:
        paths = set()
        for op in self.ops:
            for arg in op.args:
                if isinstance(arg, str) and not arg.startswith("user."):
                    paths.add(arg)
        return tuple(sorted(paths))

    # -- identity --------------------------------------------------------------------

    def workload_id(self) -> str:
        """Stable content-derived identifier."""
        digest = hashlib.sha1(
            json.dumps([op.to_json() for op in self.ops], sort_keys=True).encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def display_name(self) -> str:
        return self.name or f"workload-{self.workload_id()}"

    # -- validation -------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on structural problems.

        B3 requires at least one persistence point (otherwise there is no
        crash point to test) and that the final operation is a persistence
        point (otherwise the trailing operations can never affect any tested
        crash state — ACE's phase 3 enforces the same rule).
        """
        if not self.ops:
            raise WorkloadError("workload has no operations")
        if not any(op.is_persistence for op in self.ops):
            raise WorkloadError(
                f"workload {self.display_name()} has no persistence point; "
                "B3 only crashes after persistence operations"
            )
        if not self.ends_with_persistence():
            raise WorkloadError(
                f"workload {self.display_name()} does not end with a persistence point"
            )

    # -- serialization ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "seq_length": self.seq_length,
            "source": self.source,
            "ops": [op.to_json() for op in self.ops],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Workload":
        return cls(
            ops=[Operation.from_json(op) for op in payload.get("ops", [])],
            name=payload.get("name", ""),
            seq_length=payload.get("seq_length"),
            source=payload.get("source", ""),
        )

    def describe(self) -> str:
        """Multi-line, Figure-4 style rendering."""
        lines = [f"# {self.display_name()} (source={self.source or 'manual'})"]
        for index, op in enumerate(self.ops, start=1):
            lines.append(f"{index:>2} {op.describe()}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


def make_workload(ops: Sequence[Operation], name: str = "", seq_length: Optional[int] = None,
                  source: str = "") -> Workload:
    """Convenience constructor used by ACE and the known-bug database."""
    return Workload(ops=list(ops), name=name, seq_length=seq_length, source=source)
