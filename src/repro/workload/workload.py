"""Workload container.

A :class:`Workload` is an ordered list of operations plus bookkeeping that
the rest of the pipeline relies on:

* the *skeleton* — the sequence of core (non-dependency, non-persistence)
  operation names, used by the Figure-5 post-processing to group bug reports,
* persistence-point positions — the crash points CrashMonkey simulates,
* a stable identifier used to deduplicate and to name reports,
* *prefix keys* — content-derived identifiers of every operation prefix,
  which the prefix-shared recorder uses to recognise that two ACE sibling
  workloads start with the same operations and need that prefix recorded
  only once.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from .operations import Operation


def _hash_operation(hasher, op: Operation) -> None:
    """Feed one operation's canonical JSON into an incremental digest.

    A length-prefixed separator keeps operation boundaries unambiguous, so
    concatenations that merely *render* the same can never collide.
    """
    payload = json.dumps(op.to_json(), sort_keys=True).encode("utf-8")
    hasher.update(f"{len(payload)}:".encode("ascii"))
    hasher.update(payload)


@dataclass
class Workload:
    """An ordered sequence of file-system operations."""

    ops: List[Operation] = field(default_factory=list)
    name: str = ""
    #: Sequence length ACE aimed for (number of core operations), if known.
    seq_length: Optional[int] = None
    #: Free-form provenance label, e.g. "ace:seq-2" or "known-bug-5".
    source: str = ""

    # -- basic container behaviour ------------------------------------------------

    def __iter__(self) -> Iterator[Operation]:
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def append(self, op: Operation) -> None:
        self.ops.append(op)

    def extend(self, ops: Iterable[Operation]) -> None:
        self.ops.extend(ops)

    # -- derived views -------------------------------------------------------------

    def core_ops(self) -> List[Operation]:
        """Core operations: not persistence points and not dependency setup."""
        return [op for op in self.ops if not op.is_persistence and not op.dependency]

    def skeleton(self) -> Tuple[str, ...]:
        """The phase-1 skeleton: the ordered core operation names."""
        return tuple(op.op for op in self.core_ops())

    def persistence_points(self) -> List[int]:
        """Indices of persistence operations (in execution order)."""
        return [index for index, op in enumerate(self.ops) if op.is_persistence]

    def num_persistence_points(self) -> int:
        return len(self.persistence_points())

    def operations_used(self) -> Tuple[str, ...]:
        return tuple(sorted({op.op for op in self.core_ops()}))

    def ends_with_persistence(self) -> bool:
        return bool(self.ops) and self.ops[-1].is_persistence

    def paths_touched(self) -> Tuple[str, ...]:
        paths = set()
        for op in self.ops:
            for arg in op.args:
                if isinstance(arg, str) and not arg.startswith("user."):
                    paths.add(arg)
        return tuple(sorted(paths))

    # -- identity --------------------------------------------------------------------

    def workload_id(self) -> str:
        """Stable content-derived identifier."""
        digest = hashlib.sha1(
            json.dumps([op.to_json() for op in self.ops], sort_keys=True).encode("utf-8")
        ).hexdigest()
        return digest[:16]

    def prefix_key(self, length: Optional[int] = None) -> str:
        """Content-derived identifier of the first ``length`` operations.

        Two workloads with equal ``prefix_key(k)`` have byte-identical first
        ``k`` operations (op name, every argument, kwargs, dependency flag) —
        the property the prefix-shared recorder relies on to resume a sibling
        from a cached recording instead of re-running the prefix.  A key
        collision between *different* prefixes would silently corrupt the
        workload trie, so the key digests the full canonical JSON of every
        operation, not just the names.  ``length=None`` keys the whole
        workload.
        """
        if length is None:
            length = len(self.ops)
        hasher = hashlib.sha1()
        for op in self.ops[:length]:
            _hash_operation(hasher, op)
        return hasher.hexdigest()[:16]

    def prefix_keys(self) -> Tuple[str, ...]:
        """``prefix_key`` of every prefix, from 0 ops to the full workload.

        Computed in one incremental pass, so ``prefix_keys()[k] ==
        prefix_key(k)`` without re-hashing each prefix from scratch.
        """
        hasher = hashlib.sha1()
        keys = [hasher.hexdigest()[:16]]
        for op in self.ops:
            _hash_operation(hasher, op)
            keys.append(hasher.hexdigest()[:16])
        return tuple(keys)

    def family_key(self) -> str:
        """Identity of the workload's non-persistence operations.

        ACE's phase 3 emits *sibling families*: workloads with identical core
        and dependency operations that differ only in where persistence
        points sit.  Those siblings share the longest recording prefixes, so
        the engine's prefix-affine chunking keeps workloads with equal
        ``family_key`` in one chunk (one worker, one warm prefix cache).
        """
        hasher = hashlib.sha1()
        for op in self.ops:
            if not op.is_persistence:
                _hash_operation(hasher, op)
        return hasher.hexdigest()[:16]

    def display_name(self) -> str:
        return self.name or f"workload-{self.workload_id()}"

    # -- validation -------------------------------------------------------------------

    def validate(self) -> None:
        """Raise :class:`WorkloadError` on structural problems.

        B3 requires at least one persistence point (otherwise there is no
        crash point to test) and that the final operation is a persistence
        point (otherwise the trailing operations can never affect any tested
        crash state — ACE's phase 3 enforces the same rule).
        """
        if not self.ops:
            raise WorkloadError("workload has no operations")
        if not any(op.is_persistence for op in self.ops):
            raise WorkloadError(
                f"workload {self.display_name()} has no persistence point; "
                "B3 only crashes after persistence operations"
            )
        if not self.ends_with_persistence():
            raise WorkloadError(
                f"workload {self.display_name()} does not end with a persistence point"
            )

    # -- serialization ------------------------------------------------------------------

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "seq_length": self.seq_length,
            "source": self.source,
            "ops": [op.to_json() for op in self.ops],
        }

    @classmethod
    def from_json(cls, payload: dict) -> "Workload":
        return cls(
            ops=[Operation.from_json(op) for op in payload.get("ops", [])],
            name=payload.get("name", ""),
            seq_length=payload.get("seq_length"),
            source=payload.get("source", ""),
        )

    def describe(self) -> str:
        """Multi-line, Figure-4 style rendering."""
        lines = [f"# {self.display_name()} (source={self.source or 'manual'})"]
        for index, op in enumerate(self.ops, start=1):
            lines.append(f"{index:>2} {op.describe()}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()


def make_workload(ops: Sequence[Operation], name: str = "", seq_length: Optional[int] = None,
                  source: str = "") -> Workload:
    """Convenience constructor used by ACE and the known-bug database."""
    return Workload(ops=list(ops), name=name, seq_length=seq_length, source=source)
