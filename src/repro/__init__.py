"""repro — a pure-Python reproduction of B3 bounded black-box crash testing.

The package reimplements the system from "Finding Crash-Consistency Bugs with
Bounded Black-Box Crash Testing" (OSDI 2018): the CrashMonkey record/replay
crash-testing harness, the ACE bounded workload generator, simulated file
systems carrying the paper's bug classes, and the campaign/cluster layers used
to reproduce the paper's evaluation.
"""

__version__ = "1.0.0"

from . import errors, storage
from . import fs as filesystems  # re-exported under a readable name
from .core.campaign import quick_campaign
from .crashmonkey.harness import CrashMonkey
from .engine import CampaignEngine, HarnessSpec, ProcessPoolBackend, SerialBackend
from .workload.language import parse_workload

__all__ = [
    "errors",
    "storage",
    "filesystems",
    "quick_campaign",
    "CrashMonkey",
    "CampaignEngine",
    "HarnessSpec",
    "SerialBackend",
    "ProcessPoolBackend",
    "parse_workload",
    "__version__",
]
