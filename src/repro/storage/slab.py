"""Contiguous block-payload slabs.

The simulated stack moves every payload as an individual ``bytes`` object:
the recorder pads a payload once for its log and the CoW overlay pads it
again, so each recorded write allocates (and copies) two block-sized objects.
A :class:`BlockSlab` is an append-only arena of pre-zeroed ``bytearray``
chunks: a payload is copied into the arena exactly once and every consumer —
the recording log, the overlay, replayed crash states — shares a read-only
``memoryview`` of the same storage.  Views are zero-copy on read (slicing a
memoryview slices the buffer, it does not duplicate it) and content-compare
equal to ``bytes``, so the rest of the stack is agnostic to which
representation it holds.

Chunks are never resized once a view has been handed out (resizing an
exported ``bytearray`` raises ``BufferError``), so the arena grows by
allocating fresh chunks — geometrically, to keep small devices (a crash
state that mounts and writes three blocks) from paying a megabyte up front.

Set ``REPRO_NO_SLABS=1`` to fall back to per-block ``bytes`` objects
everywhere; profiles and crash states are byte-for-byte identical either way
(the CI matrix keeps the reference path covered).
"""

from __future__ import annotations

import os
from typing import List

from .block import BLOCK_SIZE

#: First chunk holds this many blocks; each subsequent chunk doubles, up to
#: :data:`MAX_CHUNK_BLOCKS`.  Small devices stay small, busy recorders
#: amortize allocation quickly.
MIN_CHUNK_BLOCKS = 8
MAX_CHUNK_BLOCKS = 256


def slabs_enabled() -> bool:
    """Default for slab-backed payload storage.

    Slabs are on by default; setting ``REPRO_NO_SLABS=1`` flips every device
    constructed afterwards to per-block ``bytes`` payloads (the reference
    representation the slab path is parity-proven against).  The conventional
    "unset" spellings (empty, ``0``, ``false``, ``no``, ``off``) keep slabs
    on, so ``REPRO_NO_SLABS=0`` does not silently disable them.
    """
    return os.environ.get("REPRO_NO_SLABS", "").strip().lower() in (
        "", "0", "false", "no", "off",
    )


class BlockSlab:
    """Append-only arena of block-sized payload slots.

    :meth:`store` pads a payload to one block inside the arena and returns a
    read-only ``memoryview`` of the slot.  Slots are write-once: nothing ever
    mutates a filled region, so handed-out views stay stable for the life of
    the slab (and keep their chunk alive via the buffer reference even after
    the slab itself is dropped).
    """

    __slots__ = ("_chunks", "_chunk", "_fill", "_next_blocks", "stored")

    def __init__(self, min_chunk_blocks: int = MIN_CHUNK_BLOCKS):
        if min_chunk_blocks < 1:
            raise ValueError("a slab chunk needs at least one block")
        self._chunks: List[bytearray] = []
        self._chunk: bytearray = bytearray(0)
        self._fill = 0
        self._next_blocks = min_chunk_blocks
        #: payloads stored over the slab's lifetime
        self.stored = 0

    def _grow(self) -> None:
        self._chunk = bytearray(self._next_blocks * BLOCK_SIZE)
        self._chunks.append(self._chunk)
        self._fill = 0
        self._next_blocks = min(self._next_blocks * 2, MAX_CHUNK_BLOCKS)

    def store(self, data) -> memoryview:
        """Copy ``data`` into the arena, zero-padded to one block.

        Returns a read-only view of the padded slot.  Raises ``ValueError``
        for payloads larger than a block, like :func:`~.block.pad_block`.
        """
        length = len(data)
        if length > BLOCK_SIZE:
            raise ValueError(
                f"payload of {length} bytes does not fit in a {BLOCK_SIZE}-byte block"
            )
        if self._fill >= len(self._chunk):
            self._grow()
        start = self._fill
        self._chunk[start:start + length] = data
        self._fill += BLOCK_SIZE
        self.stored += 1
        return memoryview(self._chunk)[start:start + BLOCK_SIZE].toreadonly()

    @property
    def chunks_allocated(self) -> int:
        """Number of bytearray chunks backing the arena."""
        return len(self._chunks)

    def allocated_bytes(self) -> int:
        """Total arena capacity in bytes (filled or not)."""
        return sum(len(chunk) for chunk in self._chunks)

    def filled_bytes(self) -> int:
        """Payload bytes actually stored (block-padded), excluding the
        pre-zeroed unfilled tail of the current chunk.

        This is the number memory accounting should use: ``allocated_bytes``
        includes capacity the geometric growth reserved but nothing has
        written yet, so using it as a payload proxy overstates resident
        payload memory by up to one whole chunk.
        """
        return self.stored * BLOCK_SIZE
