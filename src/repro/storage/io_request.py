"""Block I/O request records.

The paper's wrapper block device records every bio issued by the file system
together with its metadata (sector, size, flags) and injects special
*checkpoint* requests into the stream whenever a persistence operation
(fsync/fdatasync/sync/msync) completes.  The replay phase later replays the
recorded stream up to a chosen checkpoint to construct a crash state.

``IORequest`` is the Python equivalent of one recorded bio.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Tuple

from .block import Payload


class IOKind(str, Enum):
    """Kind of recorded request."""

    WRITE = "write"
    FLUSH = "flush"
    CHECKPOINT = "checkpoint"


class IOFlag(str, Enum):
    """Flags carried by a request, mirroring bio flags the paper records."""

    METADATA = "metadata"
    DATA = "data"
    SYNC = "sync"
    FUA = "fua"


@dataclass(frozen=True)
class IORequest:
    """One recorded block I/O request.

    Attributes:
        seq: monotonically increasing sequence number within a recording.
        kind: write, flush, or checkpoint marker.
        block: target block number (``None`` for flush/checkpoint).
        data: payload for writes (exactly one block, as ``bytes`` or a
            read-only ``memoryview`` into a payload slab), ``None`` otherwise.
        flags: tuple of :class:`IOFlag` values.
        checkpoint_id: for checkpoint markers, the 1-based persistence-point
            index this marker corresponds to.
        tag: free-form annotation (e.g. "superblock", "log", "data") used only
            for debugging and reports; the replayer ignores it.
    """

    seq: int
    kind: IOKind
    block: Optional[int] = None
    data: Optional[Payload] = None
    flags: Tuple[IOFlag, ...] = field(default_factory=tuple)
    checkpoint_id: Optional[int] = None
    tag: str = ""

    @property
    def is_checkpoint(self) -> bool:
        return self.kind is IOKind.CHECKPOINT

    @property
    def is_write(self) -> bool:
        return self.kind is IOKind.WRITE

    @property
    def is_flush(self) -> bool:
        return self.kind is IOKind.FLUSH

    @property
    def is_fua(self) -> bool:
        """Forced-unit-access write: durable on completion, never in-flight."""
        return IOFlag.FUA in self.flags

    @property
    def is_metadata(self) -> bool:
        return IOFlag.METADATA in self.flags

    def size_bytes(self) -> int:
        """Payload size of the request in bytes (0 for markers and flushes)."""
        return len(self.data) if self.data is not None else 0

    def describe(self) -> str:
        """Human-readable one-line description used in bug reports."""
        if self.kind is IOKind.CHECKPOINT:
            return f"#{self.seq} CHECKPOINT {self.checkpoint_id}"
        if self.kind is IOKind.FLUSH:
            return f"#{self.seq} FLUSH"
        flagstr = ",".join(flag.value for flag in self.flags) or "-"
        return f"#{self.seq} WRITE block={self.block} flags={flagstr} tag={self.tag or '-'}"


def count_checkpoints(requests) -> int:
    """Number of checkpoint markers in a recorded stream."""
    return sum(1 for request in requests if request.is_checkpoint)


def split_at_checkpoint(requests, checkpoint_id: int):
    """Return the prefix of ``requests`` up to and including ``checkpoint_id``.

    Raises ``ValueError`` if the stream does not contain that checkpoint.
    """
    return list(iter_until_checkpoint(requests, checkpoint_id))


def iter_until_checkpoint(requests, checkpoint_id: int):
    """Yield requests up to and including the ``checkpoint_id`` marker.

    Streaming counterpart of :func:`split_at_checkpoint`: consumers that only
    need one pass (the replayer constructing a crash state) avoid
    materializing a copy of the recorded log per crash state.  Raises
    ``ValueError`` — from the consuming iteration — if the stream ends
    without that checkpoint.
    """
    for request in requests:
        yield request
        if request.is_checkpoint and request.checkpoint_id == checkpoint_id:
            return
    raise ValueError(f"recorded stream has no checkpoint {checkpoint_id}")
