"""Low-level I/O replay.

CrashMonkey constructs a crash state by starting from the initial disk image
and replaying the recorded write stream up to a chosen checkpoint, much like
``dd``-ing the recorded writes back onto a snapshot.  This module implements
that replay over the simulated devices.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..errors import HarnessError
from .block_device import BlockDevice
from .cow_device import CowDevice
from .io_request import IORequest, iter_until_checkpoint


def replay_requests(base_image: BlockDevice, requests: Iterable[IORequest], name: str = "crash") -> CowDevice:
    """Replay ``requests`` onto a fresh snapshot of ``base_image``.

    Only write requests mutate the snapshot; flushes and checkpoint markers
    are ignored (they carry no payload).  Returns the resulting snapshot.
    """
    snapshot = CowDevice(base_image, name=name)
    for request in requests:
        if request.is_write:
            if request.block is None or request.data is None:
                raise HarnessError(f"malformed write request in recorded stream: {request!r}")
            snapshot.write_block(request.block, request.data)
    return snapshot


def replay_until_checkpoint(
    base_image: BlockDevice,
    requests: Iterable[IORequest],
    checkpoint_id: int,
    name: Optional[str] = None,
) -> CowDevice:
    """Replay the recorded stream up to and including ``checkpoint_id``.

    The resulting device represents the storage contents immediately after the
    corresponding persistence operation completed — the paper's *crash state*.
    Streams the prefix: the recorded log is never copied per crash state.
    """
    prefix = iter_until_checkpoint(requests, checkpoint_id)
    return replay_requests(base_image, prefix, name=name or f"crash-state-{checkpoint_id}")
