"""Recording wrapper device.

The paper's first kernel module is a wrapper block device mounted under the
target file system: it records every write (data and metadata), and inserts a
special empty *checkpoint* request into the recorded stream whenever a
persistence operation completes, so that the low-level I/O stream can be
correlated with the workload's persistence points.

``RecordingDevice`` plays that role here.  The file system under test writes
through it; the CrashMonkey harness calls :meth:`mark_checkpoint` right after
every fsync/fdatasync/sync/msync in the workload returns.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .block import BLOCK_SIZE, Payload, pad_block
from .io_request import IOFlag, IOKind, IORequest
from .slab import BlockSlab, slabs_enabled


class RecordingDevice:
    """Wraps any block device and records the write stream issued to it."""

    def __init__(self, target, name: str = "wrapper0"):
        self.target = target
        self.name = name
        self.num_blocks = target.num_blocks
        self._log: List[IORequest] = []
        self._seq = 0
        self._checkpoints = 0
        self._use_slabs = slabs_enabled()
        self._slab: Optional[BlockSlab] = None
        self.recording = True

    # -- pass-through I/O ----------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * BLOCK_SIZE

    def read_block(self, block: int) -> bytes:
        return self.target.read_block(block)

    def _capture(self, data) -> Payload:
        """Pad a write payload to one block exactly once, in the slab when enabled."""
        length = len(data)
        if length == BLOCK_SIZE or length == 0 or not self._use_slabs:
            return pad_block(data)
        if self._slab is None:
            self._slab = BlockSlab()
        return self._slab.store(data)

    def write_block(self, block: int, data, *, metadata: bool = False,
                    fua: bool = False, tag: str = "") -> None:
        """Write a block through to the target, recording the request.

        ``fua`` marks a forced-unit-access write: durable when it completes,
        so the crash planners never treat it as in-flight.
        """
        if not self.recording:
            self.target.write_block(block, data)
            return
        # Pad the payload exactly once and share the same object between the
        # target's overlay and the recorded request: re-reading it back from
        # the target would issue a spurious device read per recorded write,
        # and padding twice (here and in the CoW overlay) would allocate two
        # block-sized copies per recorded write.
        payload = self._capture(data)
        self.target.write_block(block, payload)
        flags: Tuple[IOFlag, ...] = (IOFlag.METADATA,) if metadata else (IOFlag.DATA,)
        if fua:
            flags = flags + (IOFlag.FUA,)
        self._seq += 1
        self._log.append(
            IORequest(
                seq=self._seq,
                kind=IOKind.WRITE,
                block=block,
                data=payload,
                flags=flags,
                tag=tag,
            )
        )

    def discard_block(self, block: int) -> None:
        self.target.discard_block(block)

    def flush(self, *, sync: bool = False) -> None:
        """Record a flush/barrier request and forward it to the target."""
        self.target.flush()
        if not self.recording:
            return
        flags: Tuple[IOFlag, ...] = (IOFlag.SYNC,) if sync else tuple()
        self._seq += 1
        self._log.append(IORequest(seq=self._seq, kind=IOKind.FLUSH, flags=flags))

    # -- checkpointing ---------------------------------------------------------

    def mark_checkpoint(self) -> int:
        """Insert a checkpoint marker after a persistence operation completed.

        Returns the 1-based checkpoint id assigned to the marker.
        """
        self._checkpoints += 1
        self._seq += 1
        self._log.append(
            IORequest(
                seq=self._seq,
                kind=IOKind.CHECKPOINT,
                checkpoint_id=self._checkpoints,
                flags=(IOFlag.SYNC,),
            )
        )
        return self._checkpoints

    # -- recording control ------------------------------------------------------

    def pause(self) -> None:
        """Stop recording (reads/writes still pass through)."""
        self.recording = False

    def resume(self) -> None:
        self.recording = True

    def clear_log(self) -> None:
        self._log.clear()
        self._seq = 0
        self._checkpoints = 0

    def restore_log(self, log: Sequence[IORequest], checkpoints: int) -> None:
        """Seed the recorder with an already-recorded stream.

        Used by prefix-shared profiling: a run resumed from a cached prefix
        snapshot inherits the prefix's recorded requests (and continues the
        sequence numbering and checkpoint ids after them), so its final log
        is byte-for-byte what recording from scratch would have produced.
        """
        self._log = list(log)
        self._seq = self._log[-1].seq if self._log else 0
        self._checkpoints = checkpoints

    # -- introspection -----------------------------------------------------------

    @property
    def log(self) -> Sequence[IORequest]:
        """The recorded request stream, in issue order."""
        return tuple(self._log)

    @property
    def num_checkpoints(self) -> int:
        return self._checkpoints

    def writes_between_checkpoints(self) -> List[int]:
        """Number of write requests preceding each checkpoint marker.

        Contract: exactly one count per checkpoint marker, in marker order —
        ``counts[i]`` is the number of writes between marker ``i`` and its
        predecessor (or the start of the log for the first marker).  Zero
        counts are kept.  Writes after the last marker belong to no
        persistence point (e.g. the paused unmount) and are never counted;
        previously a *non-empty* tail was appended as a phantom interval
        while an empty one was silently dropped.

        Used by the resource-accounting benchmarks: it shows how much I/O
        each persistence point generates.
        """
        counts: List[int] = []
        current = 0
        for request in self._log:
            if request.is_checkpoint:
                counts.append(current)
                current = 0
            elif request.is_write:
                current += 1
        return counts

    def recorded_bytes(self) -> int:
        """Total payload bytes recorded (write requests only)."""
        return sum(request.size_bytes() for request in self._log)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RecordingDevice(name={self.name!r}, requests={len(self._log)}, "
            f"checkpoints={self._checkpoints})"
        )
