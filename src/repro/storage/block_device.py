"""In-memory block device.

This is the bottom of the simulated storage stack: a fixed number of
4096-byte blocks addressed by block number.  Unwritten blocks read back as
zeroes, which keeps memory usage proportional to the number of blocks ever
written (the same property the paper relies on for its copy-on-write RAM
device).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..errors import InvalidBlockError
from .block import BLOCK_SIZE, DEFAULT_DEVICE_BLOCKS, ZERO_BLOCK, pad_block


class BlockDevice:
    """A sparse, in-memory array of fixed-size blocks."""

    def __init__(self, num_blocks: int = DEFAULT_DEVICE_BLOCKS, name: str = "ram0"):
        if num_blocks <= 0:
            raise ValueError("a block device needs at least one block")
        self.num_blocks = num_blocks
        self.name = name
        self._blocks: Dict[int, bytes] = {}
        self.writes = 0
        self.reads = 0
        self.flushes = 0

    # -- capacity ---------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * BLOCK_SIZE

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.num_blocks:
            raise InvalidBlockError(
                f"block {block} out of range for device {self.name!r} with {self.num_blocks} blocks"
            )

    # -- I/O ---------------------------------------------------------------

    def read_block(self, block: int) -> bytes:
        """Read one block; unwritten blocks are all zeroes."""
        self._check_block(block)
        self.reads += 1
        return self._blocks.get(block, ZERO_BLOCK)

    def write_block(self, block: int, data: bytes) -> None:
        """Write one block, padding short payloads with zeroes."""
        self._check_block(block)
        self.writes += 1
        self._blocks[block] = pad_block(data)

    def discard_block(self, block: int) -> None:
        """Drop a block's contents (reads return zeroes afterwards)."""
        self._check_block(block)
        self._blocks.pop(block, None)

    def flush(self) -> None:
        """Persist outstanding writes.  A no-op for the RAM device."""
        self.flushes += 1

    # -- bulk helpers ------------------------------------------------------

    def written_blocks(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate over ``(block, data)`` pairs that have been written."""
        return iter(sorted(self._blocks.items()))

    def used_blocks(self) -> int:
        """Number of distinct blocks holding data."""
        return len(self._blocks)

    def used_bytes(self) -> int:
        """Approximate memory footprint of the stored data."""
        return len(self._blocks) * BLOCK_SIZE

    def copy(self, name: Optional[str] = None) -> "BlockDevice":
        """Deep copy of the device (used to freeze base images)."""
        clone = BlockDevice(self.num_blocks, name=name or f"{self.name}-copy")
        clone._blocks = dict(self._blocks)
        return clone

    def clear(self) -> None:
        """Reset the device to all zeroes."""
        self._blocks.clear()

    def content_equal(self, other: "BlockDevice") -> bool:
        """True if both devices hold identical logical contents."""
        if self.num_blocks != other.num_blocks:
            return False
        blocks = set(self._blocks) | set(other._blocks)
        for block in blocks:
            if self._blocks.get(block, ZERO_BLOCK) != other._blocks.get(block, ZERO_BLOCK):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockDevice(name={self.name!r}, blocks={self.num_blocks}, used={self.used_blocks()})"
