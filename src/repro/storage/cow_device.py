"""Copy-on-write snapshot device.

CrashMonkey's second kernel module is an in-memory copy-on-write block device
that provides fast, writable snapshots: the base image is shared, writes land
in a private overlay, and resetting a snapshot simply drops the overlay.  This
module provides the same facility for the simulated stack.

Snapshots fork in O(1): instead of copying the parent's overlay, the parent's
mutable overlay is *frozen* into an immutable chain that both devices share,
and each side continues writing into its own fresh top overlay.  Reads check
the top overlay, then a merged *chain index* (one dict covering every frozen
layer, maintained incrementally at freeze time and shared with clones), then
the base — so a deep chain of forks costs one extra dict probe per read, not
a linear scan of every layer.  This is what makes the replayer's one-pass
incremental crash-state construction cheap — it forks a snapshot at every
persistence point of the recorded stream.

Short (sub-block) writes are zero-padded into a per-device :class:`BlockSlab`
arena when slabs are enabled (the default; see ``REPRO_NO_SLABS``), so the
overlay holds read-only ``memoryview`` slots of contiguous storage instead of
one heap-allocated ``bytes`` object per block.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..errors import InvalidBlockError
from .block import BLOCK_SIZE, ZERO_BLOCK, Payload, compose_torn_block, pad_block
from .block_device import BlockDevice
from .slab import BlockSlab, slabs_enabled

#: When a snapshot's frozen chain grows past this many layers the next fork
#: compacts it into a single layer.  Chains only grow by forking, so this
#: bounds the read-path lookup cost without ever copying on the common
#: few-persistence-points-per-workload case.
CHAIN_COMPACT_THRESHOLD = 32


class CowDevice:
    """A writable view over a shared, read-only base :class:`BlockDevice`.

    Multiple ``CowDevice`` instances may share one base image (and, after
    forking, any number of frozen overlay layers); each keeps its own mutable
    top overlay of modified blocks.  The base is never written through.
    """

    def __init__(self, base: BlockDevice, name: str = "cow0"):
        self.base = base
        self.name = name
        self.num_blocks = base.num_blocks
        #: immutable, shared overlay layers (oldest → newest); never mutated
        #: after being frozen by :meth:`snapshot`.
        self._chain: Tuple[Dict[int, Payload], ...] = ()
        #: merged view of every frozen layer (newest content wins), rebuilt
        #: incrementally at freeze time and shared with clones (the chain is
        #: immutable), so both the read path and the overlay accounting of a
        #: freshly forked snapshot are O(1) regardless of chain depth.
        self._chain_index: Dict[int, Payload] = {}
        #: this device's private, mutable top overlay.
        self._overlay: Dict[int, Payload] = {}
        self._use_slabs = slabs_enabled()
        self._slab: Optional[BlockSlab] = None
        self.writes = 0
        self.reads = 0
        self.flushes = 0

    # -- capacity ----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * BLOCK_SIZE

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.num_blocks:
            raise InvalidBlockError(
                f"block {block} out of range for snapshot {self.name!r} with {self.num_blocks} blocks"
            )

    # -- I/O -----------------------------------------------------------------

    def _visible_block(self, block: int) -> Payload:
        """Content this snapshot currently exposes for ``block``.

        Single lookup path shared by :meth:`read_block` and
        :meth:`write_sectors`: top overlay, then the merged chain index, then
        the base.  Does not touch this device's read accounting (a base
        fall-through still counts on the base, as a real read would).
        """
        data = self._overlay.get(block)
        if data is not None:
            return data
        data = self._chain_index.get(block)
        if data is not None:
            return data
        return self.base.read_block(block)

    def _pad(self, data) -> Payload:
        """Pad a write payload to one block, into the slab when enabled."""
        length = len(data)
        if length == BLOCK_SIZE or length == 0 or not self._use_slabs:
            return pad_block(data)
        if self._slab is None:
            self._slab = BlockSlab()
        return self._slab.store(data)

    def read_block(self, block: int) -> Payload:
        self._check_block(block)
        self.reads += 1
        return self._visible_block(block)

    def write_block(self, block: int, data) -> None:
        self._check_block(block)
        self.writes += 1
        self._overlay[block] = self._pad(data)

    def write_sectors(self, block: int, data, sectors_applied: int) -> None:
        """Apply only the first ``sectors_applied`` sectors of a block write.

        Models a torn write: the remaining sectors keep the block's prior
        visible content (overlay chain or base).  The composing read does not
        count towards ``reads`` — no request reaches the device for the part
        of the payload a crash never persisted.
        """
        self._check_block(block)
        prior = self._visible_block(block)
        self.writes += 1
        self._overlay[block] = compose_torn_block(data, prior, sectors_applied)

    def discard_block(self, block: int) -> None:
        """Make the block read as zero in this snapshot (without touching the base)."""
        self._check_block(block)
        self._overlay[block] = ZERO_BLOCK

    def flush(self) -> None:
        self.flushes += 1

    # -- snapshot management -------------------------------------------------

    def reset(self) -> None:
        """Drop every overlay layer, reverting the snapshot to the base image."""
        self._chain = ()
        self._chain_index = {}
        self._overlay.clear()

    def _freeze(self) -> None:
        """Move the mutable overlay into the immutable chain.

        The merged chain index is advanced by *copying* the old index and
        layering the overlay on top: clones holding the previous index keep
        an unmutated dict, and this device's lookups stay one probe deep.
        """
        if self._overlay:
            self._chain = self._chain + (self._overlay,)
            index = dict(self._chain_index)
            index.update(self._overlay)
            self._chain_index = index
            self._overlay = {}
        if len(self._chain) > CHAIN_COMPACT_THRESHOLD:
            # The index already holds the merged contents; reuse it as the
            # single compacted layer (it is never mutated after this point).
            self._chain = (self._chain_index,)

    def snapshot(self, name: Optional[str] = None) -> "CowDevice":
        """Create a new writable snapshot with the same visible contents.

        O(1) in the overlay size: this device's mutable overlay is frozen into
        the shared chain and both devices continue with their own empty top
        overlay, so subsequent writes to either do not affect the other.
        """
        self._freeze()
        clone = CowDevice(self.base, name=name or f"{self.name}-snap")
        clone._chain = self._chain
        clone._chain_index = self._chain_index
        clone._use_slabs = self._use_slabs
        return clone

    def _merged_overlay(self) -> Dict[int, Payload]:
        """All blocks modified relative to the base (chain + top overlay)."""
        merged: Dict[int, Payload] = dict(self._chain_index)
        merged.update(self._overlay)
        return merged

    def overlay_delta(self) -> Dict[int, Payload]:
        """Every block this snapshot changed relative to its base, merged.

        Public accessor for the spill layer: the returned dict plus the base
        image fully determine the snapshot's visible contents, so serializing
        it (with payloads flattened via ``materialize_payload``) and replaying
        it through :meth:`from_overlay` reconstructs a content-identical
        device.
        """
        return self._merged_overlay()

    @classmethod
    def from_overlay(cls, base: BlockDevice, overlay: Dict[int, Payload],
                     name: str = "cow0") -> "CowDevice":
        """Rebuild a snapshot from a base image and a merged overlay delta.

        The inverse of :meth:`overlay_delta`.  The overlay lands as a single
        frozen chain layer, so the rehydrated device behaves exactly like a
        fresh ``snapshot()`` of the original: an empty mutable top overlay,
        fresh counters, and the same visible contents.
        """
        device = cls(base, name=name)
        if overlay:
            layer = dict(overlay)
            device._chain = (layer,)
            device._chain_index = dict(layer)
        return device

    def materialize(self, name: Optional[str] = None) -> BlockDevice:
        """Flatten base + overlays into an independent :class:`BlockDevice`.

        An explicitly-written zero block is written through (not converted to
        a discard): it is a block the snapshot modified, and dropping it would
        make the flattened device's ``used_blocks()`` disagree with the
        snapshot's own accounting.
        """
        device = self.base.copy(name=name or f"{self.name}-flat")
        for block, data in self._merged_overlay().items():
            device.write_block(block, data)
        return device

    # -- accounting ------------------------------------------------------------

    def overlay_blocks(self) -> int:
        """Number of blocks that have been modified relative to the base."""
        if not self._overlay:
            return len(self._chain_index)
        return len(self._chain_index.keys() | self._overlay.keys())

    def overlay_layers(self) -> int:
        """Number of overlay layers (frozen chain + the mutable top)."""
        return len(self._chain) + 1

    def overlay_bytes(self) -> int:
        """Approximate memory the overlay consumes (the paper's §6.5 metric)."""
        return self.overlay_blocks() * BLOCK_SIZE

    def written_blocks(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate over ``(block, data)`` for the visible (merged) contents."""
        merged: Dict[int, Payload] = {}
        for block, data in self.base.written_blocks():
            merged[block] = data
        merged.update(self._merged_overlay())
        return iter(sorted(merged.items()))

    def used_blocks(self) -> int:
        return sum(1 for _ in self.written_blocks())

    def content_equal(self, other) -> bool:
        """Compare visible contents with another device (Cow or plain)."""
        if self.num_blocks != getattr(other, "num_blocks", None):
            return False
        mine = dict(self.written_blocks())
        theirs = dict(other.written_blocks())
        blocks = set(mine) | set(theirs)
        for block in blocks:
            if mine.get(block, ZERO_BLOCK) != theirs.get(block, ZERO_BLOCK):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CowDevice(name={self.name!r}, base={self.base.name!r}, "
            f"overlay_blocks={self.overlay_blocks()}, layers={self.overlay_layers()})"
        )
