"""Copy-on-write snapshot device.

CrashMonkey's second kernel module is an in-memory copy-on-write block device
that provides fast, writable snapshots: the base image is shared, writes land
in a private overlay, and resetting a snapshot simply drops the overlay.  This
module provides the same facility for the simulated stack.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..errors import InvalidBlockError
from .block import BLOCK_SIZE, ZERO_BLOCK, pad_block
from .block_device import BlockDevice


class CowDevice:
    """A writable view over a shared, read-only base :class:`BlockDevice`.

    Multiple ``CowDevice`` instances may share one base image; each keeps its
    own overlay of modified blocks.  The base is never written through.
    """

    def __init__(self, base: BlockDevice, name: str = "cow0"):
        self.base = base
        self.name = name
        self.num_blocks = base.num_blocks
        self._overlay: Dict[int, bytes] = {}
        self.writes = 0
        self.reads = 0
        self.flushes = 0

    # -- capacity ----------------------------------------------------------

    @property
    def size_bytes(self) -> int:
        return self.num_blocks * BLOCK_SIZE

    def _check_block(self, block: int) -> None:
        if not 0 <= block < self.num_blocks:
            raise InvalidBlockError(
                f"block {block} out of range for snapshot {self.name!r} with {self.num_blocks} blocks"
            )

    # -- I/O -----------------------------------------------------------------

    def read_block(self, block: int) -> bytes:
        self._check_block(block)
        self.reads += 1
        if block in self._overlay:
            return self._overlay[block]
        return self.base.read_block(block)

    def write_block(self, block: int, data: bytes) -> None:
        self._check_block(block)
        self.writes += 1
        self._overlay[block] = pad_block(data)

    def discard_block(self, block: int) -> None:
        """Make the block read as zero in this snapshot (without touching the base)."""
        self._check_block(block)
        self._overlay[block] = ZERO_BLOCK

    def flush(self) -> None:
        self.flushes += 1

    # -- snapshot management -------------------------------------------------

    def reset(self) -> None:
        """Drop the overlay, reverting the snapshot to the base image."""
        self._overlay.clear()

    def snapshot(self, name: Optional[str] = None) -> "CowDevice":
        """Create a new writable snapshot with the same visible contents.

        The new snapshot shares the base image and copies this snapshot's
        overlay, so subsequent writes to either do not affect the other.
        """
        clone = CowDevice(self.base, name=name or f"{self.name}-snap")
        clone._overlay = dict(self._overlay)
        return clone

    def materialize(self, name: Optional[str] = None) -> BlockDevice:
        """Flatten base + overlay into an independent :class:`BlockDevice`."""
        device = self.base.copy(name=name or f"{self.name}-flat")
        for block, data in self._overlay.items():
            if data == ZERO_BLOCK:
                device.discard_block(block)
            else:
                device.write_block(block, data)
        return device

    # -- accounting ------------------------------------------------------------

    def overlay_blocks(self) -> int:
        """Number of blocks that have been modified relative to the base."""
        return len(self._overlay)

    def overlay_bytes(self) -> int:
        """Approximate memory the overlay consumes (the paper's §6.5 metric)."""
        return len(self._overlay) * BLOCK_SIZE

    def written_blocks(self) -> Iterator[Tuple[int, bytes]]:
        """Iterate over ``(block, data)`` for the visible (merged) contents."""
        merged: Dict[int, bytes] = {}
        for block, data in self.base.written_blocks():
            merged[block] = data
        merged.update(self._overlay)
        return iter(sorted(merged.items()))

    def used_blocks(self) -> int:
        return sum(1 for _ in self.written_blocks())

    def content_equal(self, other) -> bool:
        """Compare visible contents with another device (Cow or plain)."""
        if self.num_blocks != getattr(other, "num_blocks", None):
            return False
        mine = dict(self.written_blocks())
        theirs = dict(other.written_blocks())
        blocks = set(mine) | set(theirs)
        for block in blocks:
            if mine.get(block, ZERO_BLOCK) != theirs.get(block, ZERO_BLOCK):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CowDevice(name={self.name!r}, base={self.base.name!r}, "
            f"overlay_blocks={self.overlay_blocks()})"
        )
