"""Block-size constants and small helpers shared by the storage layer.

The simulated devices use a fixed 4096-byte block, matching the page-sized
I/O the paper's wrapper block device observes.
"""

from __future__ import annotations

BLOCK_SIZE = 4096

#: Default device size: 100 MiB, the "clean file-system image of size 100MB"
#: that Table 3 lists as the initial state used by ACE.
DEFAULT_DEVICE_BLOCKS = (100 * 1024 * 1024) // BLOCK_SIZE

ZERO_BLOCK = bytes(BLOCK_SIZE)


def pad_block(data: bytes) -> bytes:
    """Pad ``data`` with zero bytes to exactly one block.

    Raises ``ValueError`` if the payload is larger than a block; callers that
    need multi-block payloads must split them first.
    """
    if len(data) > BLOCK_SIZE:
        raise ValueError(f"payload of {len(data)} bytes does not fit in a {BLOCK_SIZE}-byte block")
    if len(data) == BLOCK_SIZE:
        return bytes(data)
    return bytes(data) + bytes(BLOCK_SIZE - len(data))


def split_blocks(data: bytes) -> list:
    """Split ``data`` into a list of block-sized chunks, padding the last one."""
    if not data:
        return []
    chunks = []
    for offset in range(0, len(data), BLOCK_SIZE):
        chunks.append(pad_block(data[offset:offset + BLOCK_SIZE]))
    return chunks


def blocks_needed(num_bytes: int) -> int:
    """Number of blocks required to hold ``num_bytes`` bytes."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    return (num_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE
