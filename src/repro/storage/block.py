"""Block-size constants and small helpers shared by the storage layer.

The simulated devices use a fixed 4096-byte block, matching the page-sized
I/O the paper's wrapper block device observes.  Underneath that block, real
disks persist 512-byte *sectors*: a power failure can tear a block write in
the middle, leaving the first few sectors of the new payload on the platter
and the rest of the block at its prior content.  The sector constants and
:func:`compose_torn_block` model exactly that failure mode for the ``torn``
crash plan.
"""

from __future__ import annotations

from typing import Optional, Union

BLOCK_SIZE = 4096

#: Size of the atomically-persisted disk unit.  Writes of a whole block are
#: *not* atomic on power failure; writes of a single sector are.
SECTOR_SIZE = 512

SECTORS_PER_BLOCK = BLOCK_SIZE // SECTOR_SIZE

#: Default device size: 100 MiB, the "clean file-system image of size 100MB"
#: that Table 3 lists as the initial state used by ACE.
DEFAULT_DEVICE_BLOCKS = (100 * 1024 * 1024) // BLOCK_SIZE

ZERO_BLOCK = bytes(BLOCK_SIZE)

#: A block payload as the devices move it around: either an immutable
#: ``bytes`` object or a read-only ``memoryview`` into a shared slab
#: (see :mod:`.slab`).  Both compare, hash into digests, slice, and decode
#: identically for every consumer in the stack.
Payload = Union[bytes, memoryview]


def materialize_payload(data) -> Optional[bytes]:
    """Flatten a payload to an immutable ``bytes`` object.

    The one sanctioned copy point for payloads leaving the zero-copy world:
    slab-backed ``memoryview`` slots cannot be pickled (and must never escape
    to disk holding a reference to their backing arena), so the spill layer
    routes every payload through here before serializing.  ``bytes`` payloads
    and ``None`` pass through untouched.
    """
    if isinstance(data, memoryview):
        return data.tobytes()
    return data


def pad_block(data) -> Payload:
    """Pad ``data`` with zero bytes to exactly one block.

    Exactly-block-sized immutable payloads (``bytes`` or read-only
    ``memoryview``) pass through without copying — this is the zero-copy fast
    path the recording and replay hot loops rely on.  Raises ``ValueError``
    if the payload is larger than a block; callers that need multi-block
    payloads must split them first.
    """
    length = len(data)
    if length > BLOCK_SIZE:
        raise ValueError(f"payload of {length} bytes does not fit in a {BLOCK_SIZE}-byte block")
    if length == BLOCK_SIZE:
        if isinstance(data, memoryview):
            return data if data.readonly else data.toreadonly()
        return bytes(data)
    if length == 0:
        return ZERO_BLOCK
    return bytes(data) + bytes(BLOCK_SIZE - length)


def compose_torn_block(new_data, prior, sectors_applied: int) -> Payload:
    """Content of a block whose write was torn after ``sectors_applied`` sectors.

    The first ``sectors_applied`` sectors come from the (padded) new payload,
    the rest from the block's prior content — the state a mid-write power
    failure leaves behind.  ``sectors_applied`` of 0 reproduces the prior
    content and ``SECTORS_PER_BLOCK`` the fully-applied write.
    """
    if not 0 <= sectors_applied <= SECTORS_PER_BLOCK:
        raise ValueError(
            f"sectors_applied must be within [0, {SECTORS_PER_BLOCK}], got {sectors_applied}"
        )
    cut = sectors_applied * SECTOR_SIZE
    new_padded = pad_block(new_data)
    prior_padded = pad_block(prior)
    if cut == 0:
        return prior_padded
    if cut == BLOCK_SIZE:
        return new_padded
    return bytes(new_padded[:cut]) + bytes(prior_padded[cut:])


def split_blocks(data: bytes) -> list:
    """Split ``data`` into a list of block-sized chunks, padding the last one."""
    if not data:
        return []
    chunks = []
    for offset in range(0, len(data), BLOCK_SIZE):
        chunks.append(pad_block(data[offset:offset + BLOCK_SIZE]))
    return chunks


def blocks_needed(num_bytes: int) -> int:
    """Number of blocks required to hold ``num_bytes`` bytes."""
    if num_bytes < 0:
        raise ValueError("num_bytes must be non-negative")
    return (num_bytes + BLOCK_SIZE - 1) // BLOCK_SIZE
