"""Disk spill for frozen trie-spine nodes under a resident-memory budget.

The prefix-shared recorder and the shared replay cache each pin one frozen
node per operation / flush barrier: a ``CowDevice`` fork, pickled fs and
tracker state, and a slice of the recorded log.  At seq-1 and seq-2 depths
that is cheap; at seq-3 (and the planned drift workloads) the cached spines
start competing with live crash states for RAM.

A :class:`SpineStore` keeps the hot tail of both spines resident in an LRU
bounded by a byte budget and spills cold nodes to a per-campaign directory.
Spilled nodes rehydrate transparently on access and are parity-proven
byte-for-byte identical to never-spilled nodes (the tier-1 suite replays the
full seq-1 space of every simulated file system with a zero budget).

Serialization discipline: nodes reference slab-backed ``memoryview``
payloads, which can neither be pickled nor allowed to escape to disk holding
a reference to their backing arena.  Codecs therefore flatten every payload
through :func:`~.block.materialize_payload` (the one sanctioned copy point)
before handing the store a picklable dict — this module itself never touches
a slab chunk or a raw ``bytearray``, which ``tools/repro_lint.py`` enforces
as a standing invariant.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

from .block import materialize_payload

#: Default resident budget: generous enough that seq-1/seq-2 campaigns never
#: spill (their whole spines fit comfortably), so behavior and performance
#: are unchanged unless a budget is asked for.
DEFAULT_SPINE_MEMORY_BUDGET = 256 * 1024 * 1024

#: Environment override for the default budget (integer bytes).  Explicit
#: constructor arguments always win; the variable only moves the default.
SPINE_BUDGET_ENV = "REPRO_SPINE_BUDGET"


def default_spine_memory_budget() -> int:
    """Resident-byte budget to use when none is passed explicitly.

    Reads ``REPRO_SPINE_BUDGET`` (integer bytes); blank or unparsable values
    fall back to :data:`DEFAULT_SPINE_MEMORY_BUDGET`, negative values clamp
    to 0 (spill everything).
    """
    raw = os.environ.get(SPINE_BUDGET_ENV, "").strip()
    if not raw:
        return DEFAULT_SPINE_MEMORY_BUDGET
    try:
        value = int(raw)
    except ValueError:
        return DEFAULT_SPINE_MEMORY_BUDGET
    return max(0, value)


def flatten_requests(requests) -> List[Any]:
    """Copy a sequence of IORequests, flattening slab payloads to ``bytes``.

    Requests whose payloads are already ``bytes`` (or ``None``) are reused
    as-is — frozen dataclasses are immutable, so sharing them is safe.  The
    flattened twins content-compare equal to the originals (``IORequest``
    equality is content-based across representations), so replay, hashing,
    and dedup are unaffected.
    """
    from dataclasses import replace

    flattened = []
    for request in requests:
        if isinstance(request.data, memoryview):
            request = replace(request, data=materialize_payload(request.data))
        flattened.append(request)
    return flattened


def freeze_overlay(device) -> Dict[int, bytes]:
    """A picklable merged overlay delta for a ``CowDevice`` snapshot."""
    return {
        block: materialize_payload(data)
        for block, data in device.overlay_delta().items()
    }


class _Entry:
    """One stored node: resident, spilled to ``path``, or both."""

    __slots__ = ("kind", "nbytes", "node", "path")

    def __init__(self, kind: str, nbytes: int, node: Any):
        self.kind = kind
        self.nbytes = nbytes
        self.node: Optional[Any] = node
        self.path: Optional[str] = None


class SpineStore:
    """Budgeted LRU of frozen spine nodes with transparent disk spill.

    One store serves both spines of a harness (recorder prefixes and replay
    trail slots) under distinct codec *kinds*; engine pool workers each build
    their own harness and store but may share one spill directory — file
    names carry the owning pid and a per-store counter, so they never
    collide.

    Nodes are immutable once stored, which buys two properties: a node
    already on disk re-evicts by just dropping the resident reference (no
    rewrite, ``spills`` counts real file writes only), and rehydration may
    hand back a fresh object graph without coordination.
    """

    _instances = 0

    def __init__(self, memory_budget: Optional[int] = None,
                 spill_dir: Optional[str] = None, name: str = "spine"):
        if memory_budget is None:
            memory_budget = default_spine_memory_budget()
        self.memory_budget = max(0, memory_budget)
        self.name = name
        self._explicit_dir = spill_dir
        self._tmpdir: Optional[tempfile.TemporaryDirectory] = None
        SpineStore._instances += 1
        self._prefix = f"{os.getpid()}-{SpineStore._instances}-{name}"
        self._codecs: Dict[str, Any] = {}
        self._entries: "OrderedDict[int, _Entry]" = OrderedDict()
        self._next_key = 0
        #: bytes of node payload currently held resident
        self.resident_bytes = 0
        #: high-water mark of ``resident_bytes`` *after* budget enforcement,
        #: so a respected budget implies ``peak_resident_bytes <= budget``
        self.peak_resident_bytes = 0
        #: count of nodes written to disk (re-evictions of an already-spilled
        #: node do not rewrite and do not count)
        self.spills = 0
        #: total bytes of node payload written to disk
        self.spilled_bytes = 0
        #: count of nodes read back from disk
        self.rehydrations = 0

    # -- codecs --------------------------------------------------------------

    def register_codec(self, kind: str,
                       freeze: Callable[[Any], Any],
                       thaw: Callable[[Any], Any]) -> None:
        """Teach the store how to (de)serialize nodes of ``kind``.

        ``freeze`` turns a node into a picklable payload (flattening slab
        views); ``thaw`` rebuilds an equivalent node.  Re-registering a kind
        replaces its codec — the owning spine re-binds fresh closures per
        instance.
        """
        self._codecs[kind] = (freeze, thaw)

    # -- storage -------------------------------------------------------------

    def put(self, kind: str, node: Any, nbytes: int) -> int:
        """Adopt a frozen node, returning its retrieval key.

        The node stays resident (and most-recently-used) until the budget
        pushes it out; freezing is lazy — nothing is serialized unless an
        eviction actually happens.
        """
        if kind not in self._codecs:
            raise KeyError(f"no codec registered for spine kind {kind!r}")
        key = self._next_key
        self._next_key += 1
        self._entries[key] = _Entry(kind, max(0, nbytes), node)
        self.resident_bytes += max(0, nbytes)
        self._enforce_budget()
        return key

    def get(self, key: int) -> Any:
        """Fetch a node, rehydrating from disk if it was spilled.

        The node becomes most-recently-used.  The budget is re-enforced
        after rehydration, which may evict colder entries — or, under a
        zero/tiny budget, the entry just fetched; that is safe because the
        caller holds the returned reference and entries are immutable.
        """
        entry = self._entries[key]
        self._entries.move_to_end(key)
        if entry.node is None:
            node = self._rehydrate(entry)
            entry.node = node
            self.resident_bytes += entry.nbytes
            # Re-enforcing may immediately evict the entry just fetched
            # (zero/tiny budgets); the local reference keeps the returned
            # node alive for the caller regardless.
            self._enforce_budget()
            return node
        return entry.node

    def drop(self, key: int) -> None:
        """Forget a node entirely, releasing memory and any spill file."""
        entry = self._entries.pop(key, None)
        if entry is None:
            return
        if entry.node is not None:
            self.resident_bytes -= entry.nbytes
        if entry.path is not None:
            try:
                os.unlink(entry.path)
            except OSError:
                pass

    def clear(self) -> None:
        """Drop every stored node (telemetry counters are preserved)."""
        for key in list(self._entries):
            self.drop(key)

    def close(self) -> None:
        """Drop everything and release the store's temporary directory."""
        self.clear()
        if self._tmpdir is not None:
            self._tmpdir.cleanup()
            self._tmpdir = None

    def __len__(self) -> int:
        return len(self._entries)

    # -- spill mechanics -----------------------------------------------------

    def _spill_root(self) -> str:
        if self._explicit_dir is not None:
            os.makedirs(self._explicit_dir, exist_ok=True)
            return self._explicit_dir
        if self._tmpdir is None:
            self._tmpdir = tempfile.TemporaryDirectory(prefix="repro-spine-")
        return self._tmpdir.name

    def _enforce_budget(self) -> None:
        """Evict least-recently-used entries until under budget.

        Called after every put/get; the peak gauge is advanced *after*
        eviction so a run that respects the budget reports a peak within it.
        """
        if self.resident_bytes > self.memory_budget:
            for key, entry in list(self._entries.items()):
                if self.resident_bytes <= self.memory_budget:
                    break
                if entry.node is None:
                    continue
                self._evict(key, entry)
        if self.resident_bytes > self.peak_resident_bytes:
            self.peak_resident_bytes = self.resident_bytes

    def _evict(self, key: int, entry: _Entry) -> None:
        if entry.path is None:
            freeze, _ = self._codecs[entry.kind]
            payload = freeze(entry.node)
            blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
            path = os.path.join(self._spill_root(), f"{self._prefix}-{key}.node")
            with open(path, "wb") as handle:
                handle.write(blob)
            entry.path = path
            self.spills += 1
            self.spilled_bytes += len(blob)
        entry.node = None
        self.resident_bytes -= entry.nbytes

    def _rehydrate(self, entry: _Entry) -> Any:
        with open(entry.path, "rb") as handle:
            payload = pickle.load(handle)
        _, thaw = self._codecs[entry.kind]
        self.rehydrations += 1
        return thaw(payload)
