"""Block-device substrate for the B3 reproduction.

Provides the three devices the paper's CrashMonkey relies on:

* :class:`BlockDevice` — an in-memory backing store,
* :class:`CowDevice` — fast writable snapshots (base image + overlay),
* :class:`RecordingDevice` — the wrapper device that records block writes and
  checkpoint markers,

plus :class:`IORequest` records and the replay helpers that turn a recorded
stream into a crash state.
"""

from .block import (
    BLOCK_SIZE,
    DEFAULT_DEVICE_BLOCKS,
    SECTOR_SIZE,
    SECTORS_PER_BLOCK,
    Payload,
    blocks_needed,
    compose_torn_block,
    materialize_payload,
    pad_block,
    split_blocks,
)
from .block_device import BlockDevice
from .cow_device import CowDevice
from .io_request import (
    IOFlag,
    IOKind,
    IORequest,
    count_checkpoints,
    iter_until_checkpoint,
    split_at_checkpoint,
)
from .record_device import RecordingDevice
from .replay import replay_requests, replay_until_checkpoint
from .slab import BlockSlab, slabs_enabled
from .spill import (
    DEFAULT_SPINE_MEMORY_BUDGET,
    SpineStore,
    default_spine_memory_budget,
)

__all__ = [
    "BLOCK_SIZE",
    "DEFAULT_DEVICE_BLOCKS",
    "SECTOR_SIZE",
    "SECTORS_PER_BLOCK",
    "Payload",
    "blocks_needed",
    "compose_torn_block",
    "materialize_payload",
    "pad_block",
    "split_blocks",
    "BlockDevice",
    "BlockSlab",
    "slabs_enabled",
    "DEFAULT_SPINE_MEMORY_BUDGET",
    "SpineStore",
    "default_spine_memory_budget",
    "CowDevice",
    "RecordingDevice",
    "IORequest",
    "IOKind",
    "IOFlag",
    "count_checkpoints",
    "iter_until_checkpoint",
    "split_at_checkpoint",
    "replay_requests",
    "replay_until_checkpoint",
]
