"""The bounded file and directory argument set (paper §4.2 bound 2, Table 3).

ACE restricts the arguments of metadata operations to a small, fixed set of
files and directories: two files at the top level, two directories with two
files each, and (for the nested workload group) one additional directory at
depth three.  Reusing the same few names is what makes the rename/link/unlink
interactions that cause most bugs reachable within tiny workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .bounds import Bounds


@dataclass(frozen=True)
class FileSet:
    """The argument universe derived from a :class:`Bounds`."""

    files: Tuple[str, ...]
    directories: Tuple[str, ...]
    #: directory paths that mkdir/rmdir may target (they may not exist yet)
    new_directories: Tuple[str, ...]

    def all_paths(self) -> Tuple[str, ...]:
        return tuple(sorted(set(self.files) | set(self.directories) | set(self.new_directories)))

    def parents_of(self, path: str) -> List[str]:
        """Ancestor directories of ``path`` (shallowest first)."""
        parts = path.split("/")[:-1]
        parents = []
        prefix = ""
        for part in parts:
            prefix = f"{prefix}/{part}" if prefix else part
            parents.append(prefix)
        return parents

    def persistence_targets(self) -> Tuple[str, ...]:
        """Paths a persistence point may fsync (files and directories)."""
        return tuple(sorted(set(self.files) | set(self.directories)))


#: Conventional names, matching the paper's examples (A/foo, B/bar, ...).
_TOP_FILE_NAMES = ("foo", "bar", "baz", "qux")
_DIR_NAMES = ("A", "B", "C", "D")
_DIR_FILE_NAMES = ("foo", "bar", "baz", "qux")
_NESTED_DIR = "A/C"


def build_fileset(bounds: Bounds) -> FileSet:
    """Construct the argument set the given bounds describe."""
    files: List[str] = list(_TOP_FILE_NAMES[: bounds.num_top_files])
    directories: List[str] = list(_DIR_NAMES[: bounds.num_dirs])
    for directory in list(directories):
        for name in _DIR_FILE_NAMES[: bounds.files_per_dir]:
            files.append(f"{directory}/{name}")
    if bounds.nested:
        directories.append(_NESTED_DIR)
        for name in _DIR_FILE_NAMES[: bounds.files_per_dir]:
            files.append(f"{_NESTED_DIR}/{name}")
    # Directories mkdir may create: one fresh directory at the top level and
    # one nested under an existing directory.
    new_directories = [f"{_DIR_NAMES[bounds.num_dirs]}"]
    if directories:
        new_directories.append(f"{directories[0]}/new")
    return FileSet(
        files=tuple(files),
        directories=tuple(directories),
        new_directories=tuple(new_directories),
    )
