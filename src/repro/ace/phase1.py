"""ACE phase 1: select operations (skeleton generation).

A *skeleton* is an ordered tuple of core operation names, e.g.
``("rename", "link")`` for the Figure-4 example.  Phase 1 exhaustively
enumerates all sequences of the allowed operations of the requested length;
operations may repeat (the paper's default).
"""

from __future__ import annotations

import itertools
from typing import Iterator, Optional, Sequence, Tuple

from .bounds import Bounds

Skeleton = Tuple[str, ...]


def generate_skeletons(bounds: Bounds,
                       required_ops: Optional[Sequence[str]] = None) -> Iterator[Skeleton]:
    """Yield every skeleton of length ``bounds.seq_length``.

    Args:
        bounds: the workload-space bounds (operation set and sequence length).
        required_ops: if given, only skeletons containing all of these
            operations are yielded (the "focus testing on new operations"
            use case from §5.2).
    """
    for skeleton in itertools.product(bounds.operations, repeat=bounds.seq_length):
        if required_ops and not all(op in skeleton for op in required_ops):
            continue
        yield skeleton


def count_skeletons(bounds: Bounds, required_ops: Optional[Sequence[str]] = None) -> int:
    """Number of skeletons phase 1 generates."""
    if not required_ops:
        return len(bounds.operations) ** bounds.seq_length
    return sum(1 for _ in generate_skeletons(bounds, required_ops))
