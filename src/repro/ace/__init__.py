"""ACE — the Automatic Crash Explorer (bounded workload generation)."""

from .adapter import CrashMonkeyAdapter
from .bounds import (
    Bounds,
    paper_workload_groups,
    seq1_bounds,
    seq2_bounds,
    seq3_data_bounds,
    seq3_metadata_bounds,
    seq3_nested_bounds,
)
from .fileset import FileSet, build_fileset
from .phase1 import count_skeletons, generate_skeletons
from .phase2 import count_parameterizations, parameter_choices, parameterize
from .phase3 import add_persistence_points, count_persistence_variants, persistence_choices
from .phase4 import resolve_dependencies
from .synthesizer import AceSynthesizer, GenerationStats, generate_workloads, group_siblings

__all__ = [
    "Bounds",
    "seq1_bounds",
    "seq2_bounds",
    "seq3_data_bounds",
    "seq3_metadata_bounds",
    "seq3_nested_bounds",
    "paper_workload_groups",
    "FileSet",
    "build_fileset",
    "generate_skeletons",
    "count_skeletons",
    "parameterize",
    "parameter_choices",
    "count_parameterizations",
    "add_persistence_points",
    "persistence_choices",
    "count_persistence_variants",
    "resolve_dependencies",
    "AceSynthesizer",
    "GenerationStats",
    "generate_workloads",
    "group_siblings",
    "CrashMonkeyAdapter",
]
