"""ACE phase 3: add persistence points.

Every core operation may optionally be followed by a persistence point; the
*last* operation always is, so that the workload is not equivalent to one of
a shorter sequence length (paper §5.2).  The file or directory persisted is
drawn from the same bounded argument set: the file the preceding operation
touched, its parent directory, or a global ``sync``.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence

from ..workload.operations import Operation, OpKind
from .bounds import Bounds


def _primary_path(op: Operation) -> Optional[str]:
    """The path an operation primarily affects (its first path argument)."""
    for arg in op.args:
        if isinstance(arg, str) and not arg.startswith("user."):
            return arg
    return None


def _secondary_path(op: Operation) -> Optional[str]:
    """The second path argument (rename/link destination), if any."""
    paths = [arg for arg in op.args if isinstance(arg, str) and not arg.startswith("user.")]
    return paths[1] if len(paths) > 1 else None


def _parent_dir(path: str) -> Optional[str]:
    if "/" in path:
        return path.rsplit("/", 1)[0]
    return None


def persistence_choices(op: Operation, bounds: Bounds, *, final: bool) -> List[Optional[Operation]]:
    """Persistence options after one core operation.

    Returns a list whose elements are either ``None`` (no persistence point)
    or a persistence :class:`Operation`.
    """
    choices: List[Optional[Operation]] = []
    if not final and bounds.allow_unpersisted:
        choices.append(None)

    targets: List[str] = []
    primary = _primary_path(op)
    secondary = _secondary_path(op)
    if secondary is not None:
        targets.append(secondary)
    if primary is not None and primary not in targets:
        targets.append(primary)
    for path in (primary, secondary):
        if path is None:
            continue
        parent = _parent_dir(path)
        if parent is not None and parent not in targets:
            targets.append(parent)

    if OpKind.FSYNC in bounds.persistence_ops:
        for target in targets:
            choices.append(Operation(OpKind.FSYNC, (target,)))
    if OpKind.FDATASYNC in bounds.persistence_ops:
        for target in targets:
            choices.append(Operation(OpKind.FDATASYNC, (target,)))
    if OpKind.SYNC in bounds.persistence_ops:
        choices.append(Operation(OpKind.SYNC, ()))
    if not choices:
        choices.append(Operation(OpKind.SYNC, ()))
    return choices


def add_persistence_points(core_ops: Sequence[Operation], bounds: Bounds) -> Iterator[List[Operation]]:
    """Yield every interleaving of the core ops with persistence points."""
    per_position = [
        persistence_choices(op, bounds, final=(index == len(core_ops) - 1))
        for index, op in enumerate(core_ops)
    ]
    for combination in itertools.product(*per_position):
        ops: List[Operation] = []
        for core_op, persistence in zip(core_ops, combination):
            ops.append(core_op)
            if persistence is not None:
                ops.append(persistence)
        yield ops


def count_persistence_variants(core_ops: Sequence[Operation], bounds: Bounds) -> int:
    total = 1
    for index, op in enumerate(core_ops):
        total *= len(persistence_choices(op, bounds, final=(index == len(core_ops) - 1)))
    return total
