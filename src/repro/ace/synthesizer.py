"""The ACE workload synthesizer.

Glues the four generation phases together and exposes the operations a
campaign needs: exhaustive generation, counting, and deterministic sampling
of the bounded workload space (paper §5.2, Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence

from ..workload.workload import Workload
from .bounds import Bounds
from .fileset import FileSet, build_fileset
from .phase1 import count_skeletons, generate_skeletons
from .phase2 import count_parameterizations, parameterize
from .phase3 import add_persistence_points, count_persistence_variants
from .phase4 import resolve_dependencies


@dataclass
class GenerationStats:
    """How many workloads each phase produced (the Figure-4 funnel)."""

    skeletons: int = 0
    parameterized: int = 0
    with_persistence: int = 0
    final: int = 0
    discarded_invalid: int = 0

    def describe(self) -> str:
        return (
            f"phase1 skeletons={self.skeletons}, phase2 parameterized={self.parameterized}, "
            f"phase3 with persistence points={self.with_persistence}, "
            f"phase4 final={self.final} (discarded {self.discarded_invalid} invalid)"
        )


class AceSynthesizer:
    """Exhaustively generates workloads within the given bounds."""

    def __init__(self, bounds: Bounds):
        self.bounds = bounds
        self.fileset: FileSet = build_fileset(bounds)
        self.stats = GenerationStats()

    # ------------------------------------------------------------------ generation

    def generate(self, required_ops: Optional[Sequence[str]] = None,
                 limit: Optional[int] = None) -> Iterator[Workload]:
        """Yield every workload in the bounded space (optionally capped)."""
        stats = GenerationStats()
        self.stats = stats
        produced = 0
        index = 0
        for skeleton in generate_skeletons(self.bounds, required_ops):
            stats.skeletons += 1
            for core_ops in parameterize(skeleton, self.fileset, self.bounds):
                stats.parameterized += 1
                for ops_with_persistence in add_persistence_points(core_ops, self.bounds):
                    stats.with_persistence += 1
                    full_ops = resolve_dependencies(ops_with_persistence)
                    if full_ops is None:
                        stats.discarded_invalid += 1
                        continue
                    stats.final += 1
                    index += 1
                    label = self.bounds.label or f"seq-{self.bounds.seq_length}"
                    yield Workload(
                        ops=full_ops,
                        name=f"{label}-{index:07d}",
                        seq_length=self.bounds.seq_length,
                        source=f"ace:{label}",
                    )
                    produced += 1
                    if limit is not None and produced >= limit:
                        return

    def sample_stream(self, count: int, stride: Optional[int] = None,
                      required_ops: Optional[Sequence[str]] = None,
                      max_stride: int = 2000) -> Iterator[Workload]:
        """Lazily yield ``count`` workloads deterministically spread over the space.

        Sampling takes every ``stride``-th generated workload; when no stride
        is given one is estimated from the space size so the samples cover the
        whole space rather than just its beginning.  ``max_stride`` bounds the
        generation work for the multi-million-workload seq-3 spaces (a larger
        value spreads the sample wider at the cost of generation time).
        """
        if count <= 0:
            return
        if stride is None:
            estimated = max(self.estimate_count(required_ops), 1)
            stride = min(max(estimated // count, 1), max(max_stride, 1))
        produced = 0
        for position, workload in enumerate(self.generate(required_ops)):
            if position % stride == 0:
                yield workload
                produced += 1
                if produced >= count:
                    return

    def sample(self, count: int, stride: Optional[int] = None,
               required_ops: Optional[Sequence[str]] = None,
               max_stride: int = 2000) -> List[Workload]:
        """Materialized :meth:`sample_stream` (kept for convenience)."""
        return list(self.sample_stream(count, stride=stride,
                                       required_ops=required_ops,
                                       max_stride=max_stride))

    def stream(self, limit: Optional[int] = None, sample: bool = False,
               required_ops: Optional[Sequence[str]] = None) -> Iterator[Workload]:
        """The campaign-facing workload supply, always lazy.

        This is what the execution engine consumes: an iterator over the
        bounded space — exhaustive, prefix-capped (``limit``) or spread over
        the space (``limit`` + ``sample``) — that is pulled chunk by chunk,
        never materialized.

        The stream is *prefix ordered*: generation is a depth-first walk of
        (skeleton, parameterization, persistence placement), so workloads
        sharing an operation prefix — ACE sibling families — come out
        consecutively.  The prefix-shared recorder and the engine's
        prefix-affine chunking both rely on exactly this adjacency.
        """
        if limit is not None and sample:
            return self.sample_stream(limit, required_ops=required_ops)
        return self.generate(required_ops=required_ops, limit=limit)

    def sibling_groups(self, limit: Optional[int] = None,
                       required_ops: Optional[Sequence[str]] = None
                       ) -> Iterator[List[Workload]]:
        """Lazily group the generated stream into ACE sibling families.

        A family is a maximal run of consecutive workloads with equal
        :meth:`Workload.family_key` — identical core and dependency
        operations, differing only in persistence-point placement.  These are
        the workloads whose shared prefixes the prefix-shared recorder
        records once.  Grouping is a streaming pass over :meth:`stream`
        (depth-first order makes families consecutive), so only one family
        is materialized at a time.
        """
        return group_siblings(self.stream(limit=limit, required_ops=required_ops))

    # ------------------------------------------------------------------ counting

    def count(self, required_ops: Optional[Sequence[str]] = None) -> int:
        """Exact number of final workloads (consumes the generator)."""
        total = 0
        for _ in self.generate(required_ops):
            total += 1
        return total

    def estimate_count(self, required_ops: Optional[Sequence[str]] = None) -> int:
        """Fast analytic estimate (before symmetry elimination and phase-4 drops).

        This is the product of per-position parameter and persistence choices
        summed over skeletons — the quantity §5.2 uses when discussing how the
        workload space grows as bounds are relaxed.
        """
        total = 0
        for skeleton in generate_skeletons(self.bounds, required_ops):
            parameter_count = count_parameterizations(skeleton, self.fileset, self.bounds)
            # Persistence choices depend only on the operation kinds, so use a
            # representative parameterization to count them.
            representative = next(parameterize(skeleton, self.fileset, self.bounds), None)
            if representative is None:
                continue
            persistence_count = count_persistence_variants(representative, self.bounds)
            total += parameter_count * persistence_count
        return total

    def phase_counts(self) -> Dict[str, int]:
        """Per-phase counts for a Figure-4 style funnel (analytic where possible)."""
        skeletons = count_skeletons(self.bounds)
        parameterized = 0
        with_persistence = 0
        for skeleton in generate_skeletons(self.bounds):
            parameter_count = count_parameterizations(skeleton, self.fileset, self.bounds)
            parameterized += parameter_count
            representative = next(parameterize(skeleton, self.fileset, self.bounds), None)
            if representative is None:
                continue
            with_persistence += parameter_count * count_persistence_variants(representative, self.bounds)
        return {
            "phase1_skeletons": skeletons,
            "phase2_parameterized": parameterized,
            "phase3_with_persistence": with_persistence,
        }


def group_siblings(workloads: Iterable[Workload]) -> Iterator[List[Workload]]:
    """Group a workload stream into maximal runs of equal ``family_key``."""
    group: List[Workload] = []
    group_key: Optional[str] = None
    for workload in workloads:
        key = workload.family_key()
        if group and key != group_key:
            yield group
            group = []
        group.append(workload)
        group_key = key
    if group:
        yield group


def generate_workloads(bounds: Bounds, limit: Optional[int] = None) -> List[Workload]:
    """Convenience wrapper: materialize (a prefix of) the bounded space."""
    return list(AceSynthesizer(bounds).generate(limit=limit))
