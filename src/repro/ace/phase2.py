"""ACE phase 2: select parameters.

For every skeleton from phase 1, phase 2 exhaustively chooses the arguments of
each operation from the bounded file set, and the write-range class for data
operations.  It also eliminates *symmetrical* workloads: ``link(foo, bar)``
and ``link(bar, foo)`` exercise the same behaviour when neither file has been
used earlier in the workload, so only one of the pair is kept (paper §5.2).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Sequence, Tuple

from ..workload.operations import Operation, OpKind, WriteRange
from .bounds import Bounds
from .fileset import FileSet
from .phase1 import Skeleton

#: Base file size (bytes) assumed by the overwrite ranges; the dependency
#: phase writes this much data into files that data operations overwrite.
BASE_FILE_SIZE = 8192
#: Size of each generated write.
WRITE_SIZE = 4096

#: (offset, length) for each write-range class, against a BASE_FILE_SIZE file.
RANGES: Dict[str, Tuple[int, int]] = {
    WriteRange.APPEND: (BASE_FILE_SIZE, WRITE_SIZE),
    WriteRange.OVERLAP_START: (0, WRITE_SIZE),
    WriteRange.OVERLAP_MIDDLE: (BASE_FILE_SIZE // 4, WRITE_SIZE),
    WriteRange.OVERLAP_END: (BASE_FILE_SIZE - WRITE_SIZE, WRITE_SIZE),
    WriteRange.OVERLAP_EXTEND: (BASE_FILE_SIZE - WRITE_SIZE // 2, WRITE_SIZE),
}


def range_for(range_name: str) -> Tuple[int, int]:
    return RANGES[range_name]


def parameter_choices(op_name: str, fileset: FileSet, bounds: Bounds) -> List[Operation]:
    """All parameterizations of one operation within the bounds."""
    files = fileset.files
    choices: List[Operation] = []

    if op_name == OpKind.CREAT:
        choices = [Operation(OpKind.CREAT, (path,)) for path in files]
    elif op_name == OpKind.MKDIR:
        choices = [Operation(OpKind.MKDIR, (path,)) for path in fileset.new_directories]
    elif op_name == OpKind.RMDIR:
        choices = [Operation(OpKind.RMDIR, (path,)) for path in fileset.directories]
    elif op_name == OpKind.UNLINK:
        choices = [Operation(OpKind.UNLINK, (path,)) for path in files]
    elif op_name == OpKind.REMOVE:
        choices = [Operation(OpKind.REMOVE, (path,)) for path in files]
        choices.extend(Operation(OpKind.REMOVE, (path,)) for path in fileset.directories)
    elif op_name == OpKind.TRUNCATE:
        choices = [Operation(OpKind.TRUNCATE, (path, BASE_FILE_SIZE // 2)) for path in files]
    elif op_name == OpKind.SETXATTR:
        choices = [Operation(OpKind.SETXATTR, (path, "user.attr1", "value1")) for path in files]
    elif op_name == OpKind.REMOVEXATTR:
        choices = [Operation(OpKind.REMOVEXATTR, (path, "user.attr1")) for path in files]
    elif op_name in (OpKind.WRITE, OpKind.DWRITE, OpKind.MWRITE):
        for path in files:
            for range_name in bounds.write_ranges:
                offset, length = range_for(range_name)
                choices.append(Operation(op_name, (path, offset, length)))
    elif op_name == OpKind.FALLOC:
        for path in files:
            for keep_size in (False, True):
                choices.append(
                    Operation(OpKind.FALLOC, (path, BASE_FILE_SIZE, WRITE_SIZE),
                              (("keep_size", keep_size),))
                )
    elif op_name == OpKind.FZERO:
        for path in files:
            for keep_size in (False, True):
                choices.append(
                    Operation(OpKind.FZERO, (path, BASE_FILE_SIZE, WRITE_SIZE),
                              (("keep_size", keep_size),))
                )
    elif op_name == OpKind.FPUNCH:
        for path in files:
            choices.append(Operation(OpKind.FPUNCH, (path, WRITE_SIZE, WRITE_SIZE)))
    elif op_name in (OpKind.LINK, OpKind.RENAME, OpKind.SYMLINK):
        for src, dst in itertools.permutations(files, 2):
            choices.append(Operation(op_name, (src, dst)))
    else:
        raise ValueError(f"phase 2 does not know how to parameterize {op_name!r}")
    return choices


def _used_paths(ops: Sequence[Operation]) -> set:
    used = set()
    for op in ops:
        for arg in op.args:
            if isinstance(arg, str) and not arg.startswith("user."):
                used.add(arg)
    return used


def _is_symmetric_duplicate(op: Operation, earlier: Sequence[Operation]) -> bool:
    """True for the discarded half of a symmetric pair (paper's link example).

    For two-path operations whose arguments have not been used earlier in the
    workload, the two argument orders are equivalent; only the lexicographically
    ordered one is kept.
    """
    if op.op not in (OpKind.LINK, OpKind.RENAME, OpKind.SYMLINK):
        return False
    src, dst = str(op.args[0]), str(op.args[1])
    used = _used_paths(earlier)
    if src in used or dst in used:
        return False
    return src > dst


def parameterize(skeleton: Skeleton, fileset: FileSet, bounds: Bounds) -> Iterator[List[Operation]]:
    """Yield every parameterized operation sequence for one skeleton."""
    per_position = [parameter_choices(op_name, fileset, bounds) for op_name in skeleton]
    for combination in itertools.product(*per_position):
        ops = list(combination)
        symmetric = False
        for index, op in enumerate(ops):
            if _is_symmetric_duplicate(op, ops[:index]):
                symmetric = True
                break
        if symmetric:
            continue
        yield ops


def count_parameterizations(skeleton: Skeleton, fileset: FileSet, bounds: Bounds,
                            exact: bool = False) -> int:
    """Number of phase-2 workloads for a skeleton.

    With ``exact=False`` the count is the plain product of per-position
    choices (no symmetry elimination) — cheap, and what the scaling analysis
    in §5.2 uses.  With ``exact=True`` the generator is consumed.
    """
    if exact:
        return sum(1 for _ in parameterize(skeleton, fileset, bounds))
    total = 1
    for op_name in skeleton:
        total *= len(parameter_choices(op_name, fileset, bounds))
    return total
