"""B3 bounds (paper §4.2, Table 3).

The bounds define the finite workload space ACE explores exhaustively:

* the number of core file-system operations per workload (sequence length),
* the set of operations to draw from,
* the file and directory argument set (few files, shallow directories),
* the classes of write ranges (appends and overlapping overwrites),
* the initial file-system state (a small, freshly formatted image).

``Bounds`` carries user-adjustable values; the functions below reproduce the
specific bound sets the paper used for its five workload groups (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..storage.block import DEFAULT_DEVICE_BLOCKS
from ..workload.operations import OpKind, WriteRange

#: Operation set used for seq-1 and seq-2 (Table 4): the 14 core operations.
SEQ12_OPERATIONS: Tuple[str, ...] = OpKind.ACE_CORE

#: seq-3 groups narrow the operation list (Table 4).
SEQ3_DATA_OPERATIONS: Tuple[str, ...] = (
    OpKind.WRITE, OpKind.MWRITE, OpKind.DWRITE, OpKind.FALLOC,
)
SEQ3_METADATA_OPERATIONS: Tuple[str, ...] = (
    OpKind.WRITE, OpKind.LINK, OpKind.UNLINK, OpKind.RENAME,
)
SEQ3_NESTED_OPERATIONS: Tuple[str, ...] = (
    OpKind.LINK, OpKind.RENAME,
)


@dataclass(frozen=True)
class Bounds:
    """The bounded workload space ACE explores."""

    #: number of core operations per workload (the "seq-X" length)
    seq_length: int = 2
    #: operations the skeletons are drawn from
    operations: Tuple[str, ...] = SEQ12_OPERATIONS
    #: number of files at the top level of the test directory
    num_top_files: int = 2
    #: number of directories (each holding its own files)
    num_dirs: int = 2
    #: number of files inside each directory
    files_per_dir: int = 2
    #: include a nested directory (depth 3) in the argument set
    nested: bool = False
    #: write-range classes data operations choose from
    write_ranges: Tuple[str, ...] = (
        WriteRange.APPEND,
        WriteRange.OVERLAP_START,
        WriteRange.OVERLAP_MIDDLE,
        WriteRange.OVERLAP_END,
    )
    #: persistence operations phase 3 may insert
    persistence_ops: Tuple[str, ...] = (OpKind.FSYNC, OpKind.SYNC)
    #: also consider leaving an operation un-persisted (except the last one)
    allow_unpersisted: bool = True
    #: initial file-system image size in blocks (Table 3: a clean 100 MB image)
    device_blocks: int = DEFAULT_DEVICE_BLOCKS
    #: label used in reports ("seq-2", "seq-3-metadata", ...)
    label: str = ""

    def with_label(self, label: str) -> "Bounds":
        return replace(self, label=label)

    def describe(self) -> str:
        return (
            f"{self.label or f'seq-{self.seq_length}'}: "
            f"{self.seq_length} core op(s) from {len(self.operations)} operations, "
            f"{self.num_top_files} top-level files, {self.num_dirs} dirs x "
            f"{self.files_per_dir} files{' + nested dir' if self.nested else ''}, "
            f"write ranges={list(self.write_ranges)}"
        )


# -- the paper's five workload groups (Table 4) -------------------------------------


def seq1_bounds() -> Bounds:
    """seq-1: one core operation from the full 14-operation set."""
    return Bounds(seq_length=1, operations=SEQ12_OPERATIONS, label="seq-1")


def seq2_bounds() -> Bounds:
    """seq-2: two core operations from the full 14-operation set."""
    return Bounds(seq_length=2, operations=SEQ12_OPERATIONS, label="seq-2")


def seq3_data_bounds() -> Bounds:
    """seq-3-data: three core operations focused on data operations."""
    return Bounds(seq_length=3, operations=SEQ3_DATA_OPERATIONS, label="seq-3-data")


def seq3_metadata_bounds() -> Bounds:
    """seq-3-metadata: three core operations focused on metadata operations."""
    return Bounds(seq_length=3, operations=SEQ3_METADATA_OPERATIONS, label="seq-3-metadata")


def seq3_nested_bounds() -> Bounds:
    """seq-3-nested: link/rename on a file set that includes a depth-3 directory."""
    return Bounds(
        seq_length=3, operations=SEQ3_NESTED_OPERATIONS, nested=True, label="seq-3-nested"
    )


def paper_workload_groups() -> Tuple[Bounds, ...]:
    """The five bound sets from Table 4, in the paper's order."""
    return (
        seq1_bounds(),
        seq2_bounds(),
        seq3_data_bounds(),
        seq3_metadata_bounds(),
        seq3_nested_bounds(),
    )
