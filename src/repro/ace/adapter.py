"""CrashMonkey adapter (paper §5.2).

ACE's synthesizer emits workloads in the high-level language; a custom adapter
converts each one into a test program for the record-and-replay tool.  In the
paper that is a generated C++ file for CrashMonkey (or, via other adapters,
input for tools like dm-log-writes).  Here the adapter produces:

* a validated :class:`Workload` ready for :class:`repro.crashmonkey.CrashMonkey`
  (persistence points are where the harness inserts checkpoint requests), and
* optionally a standalone Python test script equivalent to the generated C++
  test file, which is useful for documentation and for reproducing a single
  workload outside the campaign machinery.
"""

from __future__ import annotations

from typing import List

from ..errors import WorkloadError
from ..workload.language import format_workload
from ..workload.workload import Workload


class CrashMonkeyAdapter:
    """Converts ACE workloads into CrashMonkey test inputs."""

    def __init__(self, fs_name: str = "btrfs"):
        self.fs_name = fs_name

    def adapt(self, workload: Workload) -> Workload:
        """Validate and return the workload CrashMonkey should run."""
        workload.validate()
        return workload

    def adapt_all(self, workloads) -> List[Workload]:
        adapted = []
        for workload in workloads:
            try:
                adapted.append(self.adapt(workload))
            except WorkloadError:
                continue
        return adapted

    def to_test_program(self, workload: Workload) -> str:
        """Render a standalone test script (the C++ test-file equivalent)."""
        workload_text = format_workload(workload)
        lines = [
            '"""Auto-generated CrashMonkey test program.',
            "",
            f"Workload: {workload.display_name()} (source: {workload.source or 'ace'})",
            '"""',
            "",
            "from repro.crashmonkey import CrashMonkey",
            "from repro.workload import parse_workload",
            "",
            "WORKLOAD = '''",
            workload_text,
            "'''",
            "",
            "",
            "def main():",
            f"    harness = CrashMonkey({self.fs_name!r})",
            f"    workload = parse_workload(WORKLOAD, name={workload.display_name()!r})",
            "    result = harness.test_workload(workload)",
            "    print(result.summary())",
            "    for report in result.bug_reports:",
            "        print(report.describe())",
            "    return 0 if result.passed else 1",
            "",
            "",
            'if __name__ == "__main__":',
            "    raise SystemExit(main())",
            "",
        ]
        return "\n".join(lines)
