"""CrashMonkey adapter (paper §5.2).

ACE's synthesizer emits workloads in the high-level language; a custom adapter
converts each one into a test program for the record-and-replay tool.  In the
paper that is a generated C++ file for CrashMonkey (or, via other adapters,
input for tools like dm-log-writes).  Here the adapter produces:

* a validated :class:`Workload` ready for :class:`repro.crashmonkey.CrashMonkey`
  (persistence points are where the harness inserts checkpoint requests), and
* optionally a standalone Python test script equivalent to the generated C++
  test file, which is useful for documentation and for reproducing a single
  workload outside the campaign machinery.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from ..errors import WorkloadError
from ..workload.language import format_workload
from ..workload.workload import Workload


class CrashMonkeyAdapter:
    """Converts ACE workloads into CrashMonkey test inputs.

    Workloads that fail validation are dropped, but never silently: the
    adapter counts them in :attr:`invalid_workloads` and keeps each drop's
    ``(display name, reason)`` in :attr:`dropped`, so campaigns can surface
    how much of the generated space was actually tested
    (``CampaignResult.invalid_workloads``).  A workload space that quietly
    shrinks would otherwise masquerade as full B3 coverage.
    """

    def __init__(self, fs_name: str = "btrfs"):
        self.fs_name = fs_name
        #: workloads dropped because validation failed, over this adapter's life
        self.invalid_workloads = 0
        #: (display name, validation error) per dropped workload
        self.dropped: List[Tuple[str, str]] = []

    def adapt(self, workload: Workload) -> Workload:
        """Validate and return the workload CrashMonkey should run."""
        workload.validate()
        return workload

    def adapt_all(self, workloads) -> List[Workload]:
        """Materialized :meth:`adapt_stream` (kept for convenience)."""
        return list(self.adapt_stream(workloads))

    def adapt_stream(self, workloads: Iterable[Workload]) -> Iterator[Workload]:
        """Lazily validate a workload stream, counting (not hiding) drops."""
        for workload in workloads:
            try:
                yield self.adapt(workload)
            except WorkloadError as exc:
                self.invalid_workloads += 1
                self.dropped.append((workload.display_name(), str(exc)))

    def to_test_program(self, workload: Workload) -> str:
        """Render a standalone test script (the C++ test-file equivalent)."""
        workload_text = format_workload(workload)
        lines = [
            '"""Auto-generated CrashMonkey test program.',
            "",
            f"Workload: {workload.display_name()} (source: {workload.source or 'ace'})",
            '"""',
            "",
            "from repro.crashmonkey import CrashMonkey",
            "from repro.workload import parse_workload",
            "",
            "WORKLOAD = '''",
            workload_text,
            "'''",
            "",
            "",
            "def main():",
            f"    harness = CrashMonkey({self.fs_name!r})",
            f"    workload = parse_workload(WORKLOAD, name={workload.display_name()!r})",
            "    result = harness.test_workload(workload)",
            "    print(result.summary())",
            "    for report in result.bug_reports:",
            "        print(report.describe())",
            "    return 0 if result.passed else 1",
            "",
            "",
            'if __name__ == "__main__":',
            "    raise SystemExit(main())",
            "",
        ]
        return "\n".join(lines)
