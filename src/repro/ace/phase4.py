"""ACE phase 4: satisfy dependencies.

The workloads produced by phases 1–3 assume their argument files and
directories exist (and, for overwrites, contain data).  Phase 4 prepends the
setup operations needed to make the workload executable on an empty file
system — exactly like Figure 4, where ``mkdir A``, ``mkdir B`` and
``creat A/foo`` are added ahead of the rename/link pair.

Workloads that are statically invalid even with dependencies (for example a
``link`` whose destination name necessarily already exists) are discarded.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from ..workload.operations import Operation, OpKind
from .phase2 import BASE_FILE_SIZE

#: Operations that require their (first) path argument to exist as a file.
_NEEDS_FILE = {
    OpKind.WRITE, OpKind.DWRITE, OpKind.MWRITE, OpKind.FALLOC, OpKind.FZERO,
    OpKind.FPUNCH, OpKind.TRUNCATE, OpKind.SETXATTR, OpKind.REMOVEXATTR,
    OpKind.UNLINK,
}

#: Operations that require base data in the file (overwrites, mmap writes, xattr removal).
_NEEDS_DATA = {OpKind.MWRITE, OpKind.FPUNCH}

#: Final path components the ACE file set uses for directories.
_DIRECTORY_NAMES = {"A", "B", "C", "D", "new"}


def _looks_like_directory(path: str) -> bool:
    """True if a path from the ACE argument set names a directory."""
    return path.rsplit("/", 1)[-1] in _DIRECTORY_NAMES


class DependencyResolver:
    """Tracks namespace state while dependencies are computed."""

    def __init__(self):
        self.dirs: Set[str] = {""}
        self.files: Set[str] = set()
        self.files_with_data: Set[str] = set()
        self.files_with_xattr: Set[str] = set()
        self.dependencies: List[Operation] = []

    # -- helpers -----------------------------------------------------------------

    def _ensure_parents(self, path: str) -> None:
        parts = path.split("/")[:-1]
        prefix = ""
        for part in parts:
            prefix = f"{prefix}/{part}" if prefix else part
            if prefix not in self.dirs:
                self.dependencies.append(Operation(OpKind.MKDIR, (prefix,), dependency=True))
                self.dirs.add(prefix)

    def _ensure_file(self, path: str) -> None:
        self._ensure_parents(path)
        if path not in self.files and path not in self.dirs:
            self.dependencies.append(Operation(OpKind.CREAT, (path,), dependency=True))
            self.files.add(path)

    def _ensure_dir(self, path: str) -> None:
        self._ensure_parents(path)
        if path not in self.dirs:
            self.dependencies.append(Operation(OpKind.MKDIR, (path,), dependency=True))
            self.dirs.add(path)

    def _ensure_data(self, path: str) -> None:
        if path not in self.files_with_data:
            self.dependencies.append(
                Operation(OpKind.WRITE, (path, 0, BASE_FILE_SIZE), dependency=True)
            )
            self.files_with_data.add(path)

    def _ensure_xattr(self, path: str, name: str) -> None:
        if path not in self.files_with_xattr:
            self.dependencies.append(
                Operation(OpKind.SETXATTR, (path, name, "depvalue"), dependency=True)
            )
            self.files_with_xattr.add(path)

    # -- per-operation handling -----------------------------------------------------

    def process(self, op: Operation, *, overwrite_needs_data: bool = True) -> bool:
        """Update state for ``op``; return False if the workload is invalid."""
        name = op.op
        args = op.args

        if name == OpKind.CREAT:
            path = str(args[0])
            self._ensure_parents(path)
            if path in self.dirs:
                return False
            self.files.add(path)
        elif name == OpKind.MKDIR:
            path = str(args[0])
            self._ensure_parents(path)
            if path in self.dirs or path in self.files:
                return False
            self.dirs.add(path)
        elif name == OpKind.RMDIR:
            path = str(args[0])
            self._ensure_dir(path)
            self.dirs.discard(path)
        elif name == OpKind.REMOVE:
            path = str(args[0])
            if path in self.dirs:
                self.dirs.discard(path)
            else:
                self._ensure_file(path)
                self.files.discard(path)
        elif name in _NEEDS_FILE:
            path = str(args[0])
            self._ensure_file(path)
            if name in _NEEDS_DATA or (
                overwrite_needs_data
                and name in (OpKind.WRITE, OpKind.DWRITE)
                and len(args) >= 2
                and int(args[1]) < BASE_FILE_SIZE
                and int(args[1]) > 0
            ):
                self._ensure_data(path)
            if name == OpKind.REMOVEXATTR:
                self._ensure_xattr(path, str(args[1]) if len(args) > 1 else "user.attr1")
            if name == OpKind.UNLINK:
                self.files.discard(path)
            elif name in (OpKind.WRITE, OpKind.DWRITE, OpKind.MWRITE, OpKind.FZERO):
                self.files_with_data.add(path)
        elif name in (OpKind.LINK, OpKind.SYMLINK):
            src, dst = str(args[0]), str(args[1])
            if name == OpKind.LINK:
                self._ensure_file(src)
            self._ensure_parents(dst)
            if dst in self.files or dst in self.dirs:
                return False
            self.files.add(dst)
        elif name == OpKind.RENAME:
            src, dst = str(args[0]), str(args[1])
            if src in self.dirs:
                self._ensure_parents(dst)
                if dst in self.files:
                    return False
                self.dirs.discard(src)
                self.dirs.add(dst)
            else:
                self._ensure_file(src)
                self._ensure_parents(dst)
                if dst in self.dirs:
                    return False
                self.files.discard(src)
                self.files.add(dst)
        elif name in (OpKind.FSYNC, OpKind.FDATASYNC, OpKind.MSYNC):
            path = str(args[0])
            if path not in self.dirs and path not in self.files:
                # The persistence target must exist.  Whether it is a file or
                # a directory follows the argument-set naming convention.
                if _looks_like_directory(path):
                    self._ensure_dir(path)
                else:
                    self._ensure_file(path)
        elif name in (OpKind.SYNC, OpKind.DROPCACHES):
            pass
        else:
            return False
        return True


def resolve_dependencies(ops: Sequence[Operation]) -> Optional[List[Operation]]:
    """Prepend the dependency operations for a phase-3 workload.

    Returns the full operation list, or ``None`` if the workload is invalid
    (phase 4 discards it).
    """
    resolver = DependencyResolver()
    for op in ops:
        if not resolver.process(op):
            return None
    return resolver.dependencies + list(ops)
