"""The campaign execution engine.

One shared generate → dispatch → check → aggregate path for everything that
tests workloads in bulk: :class:`~repro.core.campaign.B3Campaign`,
:class:`~repro.cluster.runner.ClusterRunner`, and the CLI are thin façades
over this module.

Workloads flow as a *stream*: the engine pulls from the supplied iterable
(typically ``AceSynthesizer.generate()``) only as fast as the backend consumes
chunks, so peak memory is O(in-flight chunk), never O(workload space).
Results are aggregated incrementally into a :class:`CampaignResult` as chunks
complete, with a progress callback per chunk and real per-chunk wall-clock
timing measured inside the worker that ran it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional

from ..core.results import CampaignResult
from ..crashmonkey.recorder import default_share_prefixes
from ..fs.registry import models, resolve_fs_name
from ..workload.workload import Workload
from .backends import (
    ChunkOutcome,
    ChunkStats,
    ExecutionBackend,
    IndexedChunk,
    SerialBackend,
    make_backend,
)
from .spec import HarnessSpec
from .stream import TimedIterator, chunked, chunked_affine

#: Default chunk size: large enough to amortize dispatch, small enough for
#: balanced progress reporting and bounded in-flight memory.
DEFAULT_CHUNK_SIZE = 64


@dataclass
class ProgressEvent:
    """Snapshot passed to the progress callback after every completed chunk."""

    chunks_done: int
    workloads_done: int
    failing_workloads: int
    #: workloads pulled from the generator so far (>= workloads_done)
    generated: int
    elapsed_seconds: float
    chunk: ChunkStats
    #: total chunks/workloads of the whole campaign, when known upfront (the
    #: durable runner registers the full chunk census before dispatching;
    #: streaming runs leave these ``None`` — the space is never materialized)
    chunks_total: Optional[int] = None
    workloads_total: Optional[int] = None
    #: workloads completed in this session (== ``workloads_done`` except on a
    #: resumed durable run, where ``workloads_done`` includes prior sessions)
    session_workloads: int = 0

    @property
    def workloads_per_second(self) -> float:
        """Throughput of this session so far (0.0 before the clock moves)."""
        if self.elapsed_seconds <= 0.0:
            return 0.0
        return self.session_workloads / self.elapsed_seconds

    @property
    def eta_seconds(self) -> Optional[float]:
        """Projected seconds to campaign completion (None when unknowable)."""
        rate = self.workloads_per_second
        if self.workloads_total is None or rate <= 0.0:
            return None
        return max(self.workloads_total - self.workloads_done, 0) / rate


ProgressCallback = Callable[[ProgressEvent], None]
OutcomeCallback = Callable[[ChunkOutcome], None]


@dataclass
class EngineRun:
    """Everything one engine run produced."""

    result: CampaignResult
    chunks: List[ChunkStats] = field(default_factory=list)
    wall_clock_seconds: float = 0.0

    @property
    def max_chunk_seconds(self) -> float:
        """Slowest chunk — the parallel wall clock if chunks were VMs."""
        return max((stats.seconds for stats in self.chunks), default=0.0)


class CampaignEngine:
    """Streams workloads through an execution backend into a campaign result."""

    def __init__(self, spec: HarnessSpec,
                 backend: Optional[ExecutionBackend] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 progress: Optional[ProgressCallback] = None,
                 preserve_order: bool = True,
                 prefix_affine: Optional[bool] = None):
        """
        Args:
            spec: how workers build their harnesses.
            backend: execution strategy; defaults to :class:`SerialBackend`.
            chunk_size: workloads per dispatched chunk.
            progress: called after every completed chunk.
            preserve_order: reassemble results into input-stream order after
                unordered completion, so serial and parallel runs return
                identical orderings.
            prefix_affine: cut chunk boundaries at ACE sibling-family
                boundaries (equal :meth:`Workload.family_key` runs stay in
                one chunk), so a pool worker's prefix cache and cross-workload
                dedup cache see a family's shared prefix together instead of
                split across workers.  Never reorders the stream.  ``None``
                (the default) follows ``spec.share_prefixes``.
        """
        self.spec = spec
        self.backend = backend if backend is not None else SerialBackend()
        self.chunk_size = chunk_size
        self.progress = progress
        self.preserve_order = preserve_order
        if prefix_affine is None:
            prefix_affine = (default_share_prefixes() if spec.share_prefixes is None
                             else spec.share_prefixes)
        self.prefix_affine = prefix_affine
        self.fs_name = resolve_fs_name(spec.fs_name)
        self.fs_model = models(self.fs_name)

    # ------------------------------------------------------------------ running

    def _chunked(self, timed: TimedIterator):
        if self.prefix_affine:
            return chunked_affine(timed, self.chunk_size,
                                  key=lambda workload: workload.family_key())
        return chunked(timed, self.chunk_size)

    def run(self, workloads: Iterable[Workload], label: str = "") -> EngineRun:
        """Stream ``workloads`` through the backend; chunking is the engine's."""
        timed = TimedIterator(workloads)
        run = self._execute(enumerate(self._chunked(timed)), label, timed)
        run.result.generation_seconds = timed.seconds
        if getattr(self.backend, "overlaps_generation", False):
            # Workers keep testing while the dispatch thread pulls from the
            # generator, so generation costs no extra wall clock.
            run.result.testing_seconds = run.wall_clock_seconds
        else:
            run.result.testing_seconds = max(
                run.wall_clock_seconds - timed.seconds, 0.0
            )
        return run

    def run_batches(self, batches: Iterable[List[Workload]], label: str = "") -> EngineRun:
        """Run pre-partitioned batches (e.g. the scheduler's per-VM split) as-is."""
        run = self._execute(enumerate(batches), label, source=None)
        run.result.testing_seconds = run.wall_clock_seconds
        return run

    def run_indexed(self, chunks: Iterable[IndexedChunk], label: str = "",
                    on_outcome: Optional[OutcomeCallback] = None,
                    chunks_total: Optional[int] = None,
                    workloads_total: Optional[int] = None,
                    chunks_done_offset: int = 0,
                    workloads_done_offset: int = 0,
                    failing_offset: int = 0) -> EngineRun:
        """Run explicitly indexed chunks, observing each outcome as it lands.

        This is the durable runner's entry point: chunk indices are assigned
        by the caller (so a resumed campaign dispatches only its pending
        indices and the sparse index set still reassembles in stream order),
        ``on_outcome`` fires with the full :class:`ChunkOutcome` — results
        included — *before* any progress callback, so the state store commits
        a chunk before the world hears about it, and the ``*_offset`` /
        ``*_total`` values let progress events report campaign-wide position
        (chunks done / total, ETA) instead of session-local counts.
        """
        run = self._execute(
            iter(chunks), label, source=None, on_outcome=on_outcome,
            chunks_total=chunks_total, workloads_total=workloads_total,
            chunks_done_offset=chunks_done_offset,
            workloads_done_offset=workloads_done_offset,
            failing_offset=failing_offset,
        )
        run.result.testing_seconds = run.wall_clock_seconds
        return run

    def _execute(self, stream, label: str,
                 source: Optional[TimedIterator],
                 on_outcome: Optional[OutcomeCallback] = None,
                 chunks_total: Optional[int] = None,
                 workloads_total: Optional[int] = None,
                 chunks_done_offset: int = 0,
                 workloads_done_offset: int = 0,
                 failing_offset: int = 0) -> EngineRun:
        result = CampaignResult(fs_name=self.fs_name, fs_model=self.fs_model, label=label)
        run = EngineRun(result=result)
        chunk_results: List[List] = []  # completion-ordered, parallel to run.chunks
        start = time.perf_counter()
        for outcome in self.backend.execute(self.spec, stream):
            if on_outcome is not None:
                # Persistence hook: runs before aggregation and progress so a
                # durable campaign commits the chunk before reporting it.
                on_outcome(outcome)
            result.ingest_many(outcome.results)
            stats = outcome.stats()
            run.chunks.append(stats)
            if self.preserve_order:
                chunk_results.append(outcome.results)
            if self.progress is not None:
                self.progress(
                    ProgressEvent(
                        chunks_done=len(run.chunks) + chunks_done_offset,
                        workloads_done=result.workloads_tested + workloads_done_offset,
                        failing_workloads=result.failing_workloads + failing_offset,
                        generated=source.count if source is not None else result.workloads_tested,
                        elapsed_seconds=time.perf_counter() - start,
                        chunk=stats,
                        chunks_total=chunks_total,
                        workloads_total=workloads_total,
                        session_workloads=result.workloads_tested,
                    )
                )
        run.wall_clock_seconds = time.perf_counter() - start
        order = sorted(range(len(run.chunks)), key=lambda pos: run.chunks[pos].index)
        if self.preserve_order:
            # Reassemble completion-ordered chunks back into stream order, so
            # result.results corresponds positionally to the input workloads
            # whichever backend ran them.
            result.results = [
                test_result
                for pos in order
                for test_result in chunk_results[pos]
            ]
        run.chunks = [run.chunks[pos] for pos in order]
        return run


def run_campaign(spec: HarnessSpec, workloads: Iterable[Workload], label: str = "",
                 processes: int = 1, chunk_size: int = DEFAULT_CHUNK_SIZE,
                 progress: Optional[ProgressCallback] = None) -> EngineRun:
    """One-call engine entry point used by the façades."""
    engine = CampaignEngine(
        spec,
        backend=make_backend(processes),
        chunk_size=chunk_size,
        progress=progress,
    )
    return engine.run(workloads, label=label)
