"""Streaming helpers for the execution engine.

The engine never materializes the workload space: workloads flow from the
synthesizer's generator into fixed-size chunks, and only the in-flight chunks
exist at any moment.  Peak memory is O(chunk size x in-flight chunks), not
O(workload space) — the difference between seq-1's hundreds of workloads and
the paper's 3.37M.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, List, TypeVar

T = TypeVar("T")


class TimedIterator(Iterator[T]):
    """Wrap an iterator, accounting time spent producing items.

    With streaming execution, generation interleaves with testing; this
    wrapper attributes the time spent inside the source generator (its
    ``__next__`` calls) so campaigns can still report generation vs. testing
    seconds separately.
    """

    def __init__(self, source: Iterable[T]):
        self._source = iter(source)
        #: accumulated seconds spent pulling from the source
        self.seconds: float = 0.0
        #: number of items pulled so far
        self.count: int = 0
        #: True once the source is exhausted
        self.exhausted: bool = False

    def __iter__(self) -> "TimedIterator[T]":
        return self

    def __next__(self) -> T:
        start = time.perf_counter()
        try:
            item = next(self._source)
        except StopIteration:
            self.exhausted = True
            self.seconds += time.perf_counter() - start
            raise
        self.seconds += time.perf_counter() - start
        self.count += 1
        return item


def chunked(items: Iterable[T], chunk_size: int) -> Iterator[List[T]]:
    """Lazily split ``items`` into lists of at most ``chunk_size``."""
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    chunk: List[T] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


def chunked_affine(items: Iterable[T], chunk_size: int,
                   key: Callable[[T], object],
                   max_chunk_size: int = 0) -> Iterator[List[T]]:
    """Chunk like :func:`chunked` but cut only at affinity-key boundaries.

    A chunk is flushed once it holds at least ``chunk_size`` items *and* the
    next item starts a new affinity group (``key`` changes between
    consecutive items), so a run of equal-key items — an ACE sibling family,
    whose members share the recording prefixes a worker's prefix cache can
    reuse — never spans two chunks.  ``max_chunk_size`` (default
    ``4 * chunk_size``) bounds the stretch: a single group larger than that
    is split anyway, trading some cache warmth for bounded in-flight memory.

    Affinity only changes *where* chunk boundaries fall, never the item
    order: concatenating the chunks always reproduces the input stream, so
    serial and pool campaigns test identical workloads in identical order.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    if max_chunk_size <= 0:
        max_chunk_size = 4 * chunk_size
    if max_chunk_size < chunk_size:
        raise ValueError("max_chunk_size must be >= chunk_size")
    chunk: List[T] = []
    last_key: object = None
    for item in items:
        item_key = key(item)
        if chunk and (
            len(chunk) >= max_chunk_size
            or (len(chunk) >= chunk_size and item_key != last_key)
        ):
            yield chunk
            chunk = []
        chunk.append(item)
        last_key = item_key
    if chunk:
        yield chunk


