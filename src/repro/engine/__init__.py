"""The streaming, parallel campaign execution engine.

Single execution path shared by campaigns, the cluster runner and the CLI:
workloads stream from the synthesizer through chunked dispatch onto an
:class:`ExecutionBackend` (serial or process pool, one long-lived harness per
worker) and aggregate incrementally into a :class:`CampaignResult`.
"""

from .backends import (
    ChunkOutcome,
    ExecutionBackend,
    ProcessPoolBackend,
    SerialBackend,
    make_backend,
)
from .engine import (
    DEFAULT_CHUNK_SIZE,
    CampaignEngine,
    ChunkStats,
    EngineRun,
    ProgressEvent,
    run_campaign,
)
from .spec import HarnessSpec
from .stream import TimedIterator, chunked, chunked_affine

__all__ = [
    "HarnessSpec",
    "ExecutionBackend",
    "SerialBackend",
    "ProcessPoolBackend",
    "ChunkOutcome",
    "make_backend",
    "CampaignEngine",
    "EngineRun",
    "ChunkStats",
    "ProgressEvent",
    "run_campaign",
    "DEFAULT_CHUNK_SIZE",
    "TimedIterator",
    "chunked",
    "chunked_affine",
]
