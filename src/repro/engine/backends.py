"""Execution backends.

A backend takes a :class:`HarnessSpec` plus a lazy stream of indexed workload
chunks and yields one :class:`ChunkOutcome` per chunk, in *completion* order.
Two implementations cover the portable and the parallel case:

* :class:`SerialBackend` — one harness, one process.  The harness is built
  once and reused for every chunk (the recorder re-copies its pristine image
  per workload, so no state leaks between workloads).
* :class:`ProcessPoolBackend` — the paper's cluster in miniature.  Each worker
  process builds a worker-local harness in its initializer and keeps it for
  the whole run; chunks are dispatched ``imap_unordered``-style with a bounded
  submission window so the workload stream is consumed lazily instead of being
  drained into the pool's task queue.

Per-chunk seconds are measured *inside* the worker (wall clock around the
actual testing), which is what the per-VM statistics report — not a uniform
share of the pool's elapsed time.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Protocol, Set, Tuple

from ..crashmonkey.harness import CrashMonkey
from ..crashmonkey.report import CrashTestResult
from ..workload.workload import Workload
from .spec import HarnessSpec

#: Indexed chunk: (position in the stream, workloads).
IndexedChunk = Tuple[int, List[Workload]]


@dataclass
class ChunkStats:
    """Timing and outcome of one completed chunk (one VM batch's worth).

    What remains of a :class:`ChunkOutcome` once its results have been
    aggregated — everything but the result payload.
    """

    index: int
    workloads: int
    seconds: float
    failing_workloads: int
    worker: str
    #: workloads in this chunk whose profile resumed from the worker's
    #: prefix cache (prefix-affine chunking keeps this high for ACE streams)
    prefix_hits: int = 0
    #: workloads in this chunk whose crash-state build resumed from the
    #: worker's shared replay trail
    replay_hits: int = 0
    #: crash scenarios this chunk skipped via the worker's cross-workload
    #: dedup cache
    cross_deduped_scenarios: int = 0


@dataclass
class ChunkOutcome:
    """Results and real timing of one tested chunk."""

    index: int
    results: List[CrashTestResult]
    #: wall-clock seconds measured around the chunk inside the worker
    seconds: float
    #: identifier of the worker that ran the chunk ("serial" or "pid-<n>")
    worker: str = "serial"

    @property
    def failing_workloads(self) -> int:
        return sum(1 for result in self.results if not result.passed)

    @property
    def prefix_hits(self) -> int:
        return sum(1 for result in self.results if result.prefix_shared)

    @property
    def replay_hits(self) -> int:
        return sum(1 for result in self.results if result.replay_shared)

    @property
    def cross_deduped_scenarios(self) -> int:
        return sum(result.cross_deduped_scenarios for result in self.results)

    def stats(self) -> ChunkStats:
        """This outcome without its result payload."""
        return ChunkStats(
            index=self.index,
            workloads=len(self.results),
            seconds=self.seconds,
            failing_workloads=self.failing_workloads,
            worker=self.worker,
            prefix_hits=self.prefix_hits,
            replay_hits=self.replay_hits,
            cross_deduped_scenarios=self.cross_deduped_scenarios,
        )


class ExecutionBackend(Protocol):
    """Anything that can test a stream of workload chunks."""

    #: True when workers keep testing while the dispatch thread pulls more
    #: workloads from the generator — generation then costs no extra wall
    #: clock and must not be subtracted from the testing time.
    overlaps_generation: bool

    def execute(self, spec: HarnessSpec,
                chunks: Iterable[IndexedChunk]) -> Iterator[ChunkOutcome]:
        """Test every chunk, yielding outcomes as they complete."""
        ...


# --------------------------------------------------------------------------- serial


class SerialBackend:
    """In-process execution with a single long-lived harness."""

    overlaps_generation = False

    def __init__(self, harness: Optional[CrashMonkey] = None):
        self._harness = harness
        self._spec: Optional[HarnessSpec] = None

    def _harness_for(self, spec: HarnessSpec) -> CrashMonkey:
        if self._harness is None or (self._spec is not None and self._spec != spec):
            self._harness = spec.build()
        self._spec = spec
        return self._harness

    def execute(self, spec: HarnessSpec,
                chunks: Iterable[IndexedChunk]) -> Iterator[ChunkOutcome]:
        harness = self._harness_for(spec)
        for index, chunk in chunks:
            harness.begin_chunk(index)
            start = time.perf_counter()
            results = list(harness.test_stream(chunk))
            yield ChunkOutcome(
                index=index,
                results=results,
                seconds=time.perf_counter() - start,
                worker="serial",
            )


# --------------------------------------------------------------------------- pool

#: Worker-local harness, built once per worker process by :func:`_init_worker`.
_WORKER_HARNESS: Optional[CrashMonkey] = None


def _init_worker(spec: HarnessSpec) -> None:
    global _WORKER_HARNESS
    _WORKER_HARNESS = spec.build()


def _run_chunk(indexed_chunk: IndexedChunk) -> ChunkOutcome:
    index, chunk = indexed_chunk
    harness = _WORKER_HARNESS
    if harness is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker harness was not initialized")
    harness.begin_chunk(index)
    start = time.perf_counter()
    results = list(harness.test_stream(chunk))
    return ChunkOutcome(
        index=index,
        results=results,
        seconds=time.perf_counter() - start,
        worker=f"pid-{os.getpid()}",
    )


class ProcessPoolBackend:
    """Parallel execution across worker processes with bounded in-flight work.

    Args:
        processes: number of worker processes (defaults to the CPUs this
            process may use).
        max_inflight: cap on chunks submitted but not yet collected.  Bounds
            both memory and how far ahead of testing the workload generator is
            consumed; defaults to ``2 * processes``.
    """

    overlaps_generation = True

    def __init__(self, processes: Optional[int] = None,
                 max_inflight: Optional[int] = None):
        if processes is None:
            try:
                processes = len(os.sched_getaffinity(0))
            except AttributeError:  # pragma: no cover - non-Linux
                processes = os.cpu_count() or 1
        self.processes = max(1, processes)
        self.max_inflight = max_inflight if max_inflight is not None else 2 * self.processes
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")

    def execute(self, spec: HarnessSpec,
                chunks: Iterable[IndexedChunk]) -> Iterator[ChunkOutcome]:
        source = iter(chunks)
        with ProcessPoolExecutor(
            max_workers=self.processes,
            initializer=_init_worker,
            initargs=(spec,),
        ) as executor:
            pending: Set[Future] = set()
            exhausted = False
            while True:
                # Refill the submission window from the (lazy) chunk stream.
                while not exhausted and len(pending) < self.max_inflight:
                    try:
                        indexed_chunk = next(source)
                    except StopIteration:
                        exhausted = True
                        break
                    pending.add(executor.submit(_run_chunk, indexed_chunk))
                if not pending:
                    break
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()


def make_backend(processes: int = 1,
                 harness: Optional[CrashMonkey] = None) -> ExecutionBackend:
    """Pick the natural backend for a process count."""
    if processes <= 1:
        return SerialBackend(harness=harness)
    return ProcessPoolBackend(processes=processes)
