"""Harness specification.

Execution backends need to (re)construct :class:`CrashMonkey` harnesses in
other processes, so instead of shipping a live harness (which drags the whole
file-system object graph through pickle) they ship a small, frozen *spec* —
everything needed to build an equivalent harness on the other side.  A worker
builds its harness once from the spec and then reuses it for every workload it
tests; the harness itself re-mkfs-es (copies the pristine image) per workload,
which is B3's fixed-initial-state bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..crashmonkey.harness import CrashMonkey
from ..fs.bugs import BugConfig
from ..storage.block import DEFAULT_DEVICE_BLOCKS


@dataclass(frozen=True)
class HarnessSpec:
    """Everything needed to build a :class:`CrashMonkey` in any process."""

    fs_name: str = "btrfs"
    bugs: Optional[BugConfig] = None
    device_blocks: int = DEFAULT_DEVICE_BLOCKS
    only_last_checkpoint: bool = False
    run_write_checks: bool = True
    #: check selection, by registered name (None = every registered check);
    #: plain tuples of strings so the spec stays hashable and pickleable —
    #: pool workers rebuild identical pipelines from their own registry.
    #: Custom checks must therefore be registered at import time of a module
    #: the workers also import; under the ``spawn`` start method a check
    #: registered only in the parent process does not exist in workers
    #: (selecting it by name raises ``KeyError`` there).
    checks: Optional[Tuple[str, ...]] = None
    skip_checks: Tuple[str, ...] = ()
    #: crash-plan selection by name + bounds; workers rebuild an identical
    #: planner from these plain values (planner objects are never pickled)
    crash_plan: str = "prefix"
    reorder_bound: int = 2
    torn_bound: int = 2
    #: skip crash states at a checkpoint that provably repeats an earlier one
    #: (same stable fork, window and expectations — flush-free windows)
    dedup_scenarios: bool = True
    #: record shared ACE-sibling operation prefixes once per worker, resuming
    #: each sibling's profile from an O(1) snapshot fork (profiles stay
    #: byte-for-byte identical to from-scratch recording).  Also makes the
    #: engine chunk prefix-affinely so siblings land on the same worker.
    #: ``None`` follows the recorder's default (on, unless the
    #: ``REPRO_NO_SHARE_PREFIXES`` environment variable is set).
    share_prefixes: Optional[bool] = None
    #: resume each workload's one-pass crash-state build from the deepest
    #: cached cursor fork on its recorded stream's shared sibling prefix
    #: (crash states stay byte-for-byte identical to from-scratch
    #: construction).  ``None`` follows the replayer's default (on, unless
    #: the ``REPRO_NO_SHARE_REPLAY`` environment variable is set).
    share_replay: Optional[bool] = None
    #: skip crash states already tested by an earlier workload of the same
    #: worker harness (byte-identical states and expectations).  The cache is
    #: per harness: campaign-wide under the serial backend, per worker under
    #: a pool — prefix-affine chunking keeps sibling families on one worker,
    #: so pool runs dedup the same sibling repeats, but counts can differ
    #: from serial when a family is split across workers (unless a
    #: ``global_dedup_cache`` path is set).
    cross_workload_dedup: bool = False
    #: path to a disk-backed sighting database shared by every worker built
    #: from this spec, promoting cross-workload dedup to campaign-global
    #: under a pool backend.  Workers open their own sqlite connection to the
    #: path; only the string crosses process boundaries.
    global_dedup_cache: Optional[str] = None
    #: campaign identifier scoping the disk-backed sighting cache; with
    #: ``global_dedup_cache`` set this stores sightings durably per campaign
    #: (the campaign state database), making resumed cross-workload dedup
    #: independent of interrupt history.  Ignored without a cache path.
    dedup_scope: Optional[str] = None
    #: run the static mechanism analysis over each recorded stream; ``None``
    #: enables it exactly when the crash plan consumes the report (the
    #: ``mechanism`` plan), ``True`` forces it (overhead measurement)
    analyze_mechanisms: Optional[bool] = None
    #: resident-byte budget shared by each worker harness's two trie spines;
    #: frozen nodes beyond it spill to disk and rehydrate transparently.
    #: ``None`` follows the spill store's default (generous; the
    #: ``REPRO_SPINE_BUDGET`` environment variable can lower it)
    spine_memory_budget: Optional[int] = None
    #: directory spilled spine nodes are written to; every worker built from
    #: this spec shares it (file names are pid-unique).  ``None`` gives each
    #: worker a private temporary directory
    spine_spill_dir: Optional[str] = None
    kernel_version: str = "4.16"

    def build(self) -> CrashMonkey:
        """Construct a harness equivalent to this spec."""
        return CrashMonkey(
            self.fs_name,
            bugs=self.bugs,
            device_blocks=self.device_blocks,
            only_last_checkpoint=self.only_last_checkpoint,
            run_write_checks=self.run_write_checks,
            checks=self.checks,
            skip_checks=self.skip_checks,
            crash_plan=self.crash_plan,
            reorder_bound=self.reorder_bound,
            torn_bound=self.torn_bound,
            dedup_scenarios=self.dedup_scenarios,
            share_prefixes=self.share_prefixes,
            share_replay=self.share_replay,
            cross_workload_dedup=self.cross_workload_dedup,
            global_dedup_cache=self.global_dedup_cache,
            dedup_scope=self.dedup_scope,
            analyze_mechanisms=self.analyze_mechanisms,
            spine_memory_budget=self.spine_memory_budget,
            spine_spill_dir=self.spine_spill_dir,
            kernel_version=self.kernel_version,
        )
